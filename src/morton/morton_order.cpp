#include "edgepcc/morton/morton_order.h"

#include "edgepcc/common/trace.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/parallel/parallel_for.h"
#include "edgepcc/parallel/radix_sort.h"

namespace edgepcc {

MortonOrder
computeMortonOrder(const VoxelCloud &cloud, WorkRecorder *recorder)
{
    ScopedTrace trace("morton.order");
    const std::size_t n = cloud.size();
    MortonOrder order;
    order.depth = cloud.gridBits();

    // SoA end to end: codes and the permutation are generated
    // directly into the result arrays and sorted together, with no
    // intermediate (key, index) AoS staging buffer. The generate
    // kernel is SIMD-dispatched per chunk (platform/simd.h).
    order.codes.resize(n);
    order.perm.resize(n);
    const std::uint16_t *x = cloud.x().data();
    const std::uint16_t *y = cloud.y().data();
    const std::uint16_t *z = cloud.z().data();
    std::uint64_t *codes = order.codes.data();
    std::uint32_t *perm = order.perm.data();

    parallelForChunks(0, n, [&](std::size_t lo, std::size_t hi) {
        mortonEncodeBatch(x + lo, y + lo, z + lo, hi - lo,
                          codes + lo);
        for (std::size_t i = lo; i < hi; ++i)
            perm[i] = static_cast<std::uint32_t>(i);
    });
    recordKernel(recorder,
                 KernelWork{.name = "morton.generate",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            // ~6 shift/or ops per axis, 3 axes.
                            .ops = n * 18,
                            .bytes = n * (6 + 12)});

    const int key_bits = 3 * cloud.gridBits();
    radixSortKeysValues(codes, perm, n, key_bits);
    const auto passes =
        static_cast<std::uint64_t>((key_bits + 7) / 8);
    recordKernel(recorder,
                 KernelWork{.name = "morton.sort",
                            .resource = ExecResource::kGpu,
                            .invocations = passes,
                            .items = n,
                            .ops = n * passes * 4,
                            .bytes = n * passes * 2 * 12});
    return order;
}

VoxelCloud
applyOrder(const VoxelCloud &cloud, const MortonOrder &order,
           WorkRecorder *recorder)
{
    ScopedTrace trace("morton.gather");
    const std::size_t n = cloud.size();
    VoxelCloud out(cloud.gridBits());
    out.resize(n);
    parallelFor(0, n, [&](std::size_t i) {
        const std::uint32_t src = order.perm[i];
        out.mutableX()[i] = cloud.x()[src];
        out.mutableY()[i] = cloud.y()[src];
        out.mutableZ()[i] = cloud.z()[src];
        out.mutableR()[i] = cloud.r()[src];
        out.mutableG()[i] = cloud.g()[src];
        out.mutableB()[i] = cloud.b()[src];
    });
    recordKernel(recorder,
                 KernelWork{.name = "morton.gather",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 6,
                            .bytes = n * 2 * 9});
    return out;
}

bool
isSorted(const std::vector<std::uint64_t> &codes)
{
    for (std::size_t i = 1; i < codes.size(); ++i) {
        if (codes[i - 1] > codes[i])
            return false;
    }
    return true;
}

}  // namespace edgepcc
