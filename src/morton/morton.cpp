#include "edgepcc/morton/morton.h"

namespace edgepcc {

std::uint64_t
mortonExpandBits(std::uint32_t v)
{
    // Classic bit-spreading sequence for 21-bit inputs
    // (Baert, "Morton encoding/decoding through bit interleaving").
    std::uint64_t x = v & 0x1fffffULL;
    x = (x | (x << 32)) & 0x1f00000000ffffULL;
    x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
    x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
    x = (x | (x << 2)) & 0x1249249249249249ULL;
    return x;
}

std::uint32_t
mortonCompactBits(std::uint64_t v)
{
    std::uint64_t x = v & 0x1249249249249249ULL;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
    x = (x ^ (x >> 32)) & 0x1fffffULL;
    return static_cast<std::uint32_t>(x);
}

int
mortonCommonLevel(std::uint64_t a, std::uint64_t b, int depth)
{
    for (int level = 0; level < depth; ++level) {
        const int shift = 3 * (depth - 1 - level);
        if ((a >> shift) != (b >> shift))
            return level;
    }
    return depth;
}

}  // namespace edgepcc
