#include "edgepcc/morton/morton.h"

#include <cstring>

#include "edgepcc/platform/simd.h"

#if EDGEPCC_SIMD_X86
#include <immintrin.h>
#endif

namespace edgepcc {

std::uint64_t
mortonExpandBits(std::uint32_t v)
{
    // Classic bit-spreading sequence for 21-bit inputs
    // (Baert, "Morton encoding/decoding through bit interleaving").
    std::uint64_t x = v & 0x1fffffULL;
    x = (x | (x << 32)) & 0x1f00000000ffffULL;
    x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
    x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
    x = (x | (x << 2)) & 0x1249249249249249ULL;
    return x;
}

std::uint32_t
mortonCompactBits(std::uint64_t v)
{
    std::uint64_t x = v & 0x1249249249249249ULL;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
    x = (x ^ (x >> 32)) & 0x1fffffULL;
    return static_cast<std::uint32_t>(x);
}

int
mortonCommonLevel(std::uint64_t a, std::uint64_t b, int depth)
{
    for (int level = 0; level < depth; ++level) {
        const int shift = 3 * (depth - 1 - level);
        if ((a >> shift) != (b >> shift))
            return level;
    }
    return depth;
}

namespace {

void
mortonEncodeBatchScalar(const std::uint16_t *x,
                        const std::uint16_t *y,
                        const std::uint16_t *z, std::size_t n,
                        std::uint64_t *codes)
{
    for (std::size_t i = 0; i < n; ++i)
        codes[i] = mortonEncode(x[i], y[i], z[i]);
}

void
mortonDecodeBatchScalar(const std::uint64_t *codes, std::size_t n,
                        std::uint32_t *x, std::uint32_t *y,
                        std::uint32_t *z)
{
    for (std::size_t i = 0; i < n; ++i) {
        const MortonXyz xyz = mortonDecode(codes[i]);
        x[i] = xyz.x;
        y[i] = xyz.y;
        z[i] = xyz.z;
    }
}

#if EDGEPCC_SIMD_X86

// The same spread/compact mask sequence as the scalar path, run on
// two (SSE4) or four (AVX2) 64-bit lanes at once. u16 inputs are
// already below 2^21, so the initial 21-bit clamp is a no-op and is
// skipped; every other step is the exact scalar computation per
// lane, keeping the batch byte-identical to the reference.

__attribute__((target("sse4.2"))) inline __m128i
expandBitsSse(__m128i v)
{
    v = _mm_and_si128(_mm_or_si128(v, _mm_slli_epi64(v, 32)),
                      _mm_set1_epi64x(0x1f00000000ffffLL));
    v = _mm_and_si128(_mm_or_si128(v, _mm_slli_epi64(v, 16)),
                      _mm_set1_epi64x(0x1f0000ff0000ffLL));
    v = _mm_and_si128(_mm_or_si128(v, _mm_slli_epi64(v, 8)),
                      _mm_set1_epi64x(0x100f00f00f00f00fLL));
    v = _mm_and_si128(_mm_or_si128(v, _mm_slli_epi64(v, 4)),
                      _mm_set1_epi64x(0x10c30c30c30c30c3LL));
    v = _mm_and_si128(_mm_or_si128(v, _mm_slli_epi64(v, 2)),
                      _mm_set1_epi64x(0x1249249249249249LL));
    return v;
}

__attribute__((target("sse4.2"))) inline __m128i
compactBitsSse(__m128i v)
{
    v = _mm_and_si128(v, _mm_set1_epi64x(0x1249249249249249LL));
    v = _mm_and_si128(_mm_xor_si128(v, _mm_srli_epi64(v, 2)),
                      _mm_set1_epi64x(0x10c30c30c30c30c3LL));
    v = _mm_and_si128(_mm_xor_si128(v, _mm_srli_epi64(v, 4)),
                      _mm_set1_epi64x(0x100f00f00f00f00fLL));
    v = _mm_and_si128(_mm_xor_si128(v, _mm_srli_epi64(v, 8)),
                      _mm_set1_epi64x(0x1f0000ff0000ffLL));
    v = _mm_and_si128(_mm_xor_si128(v, _mm_srli_epi64(v, 16)),
                      _mm_set1_epi64x(0x1f00000000ffffLL));
    v = _mm_and_si128(_mm_xor_si128(v, _mm_srli_epi64(v, 32)),
                      _mm_set1_epi64x(0x1fffffLL));
    return v;
}

__attribute__((target("sse4.2"))) inline __m128i
loadTwoU16Sse(const std::uint16_t *p)
{
    std::uint32_t packed;
    std::memcpy(&packed, p, 4);
    return _mm_cvtepu16_epi64(
        _mm_cvtsi32_si128(static_cast<int>(packed)));
}

__attribute__((target("sse4.2"))) void
mortonEncodeBatchSse4(const std::uint16_t *x,
                      const std::uint16_t *y,
                      const std::uint16_t *z, std::size_t n,
                      std::uint64_t *codes)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i ex = expandBitsSse(loadTwoU16Sse(x + i));
        const __m128i ey = expandBitsSse(loadTwoU16Sse(y + i));
        const __m128i ez = expandBitsSse(loadTwoU16Sse(z + i));
        const __m128i code = _mm_or_si128(
            ex, _mm_or_si128(_mm_slli_epi64(ey, 1),
                             _mm_slli_epi64(ez, 2)));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(codes + i),
                         code);
    }
    mortonEncodeBatchScalar(x + i, y + i, z + i, n - i, codes + i);
}

__attribute__((target("sse4.2"))) void
mortonDecodeBatchSse4(const std::uint64_t *codes, std::size_t n,
                      std::uint32_t *x, std::uint32_t *y,
                      std::uint32_t *z)
{
    std::size_t i = 0;
    alignas(16) std::uint64_t lane[2];
    for (; i + 2 <= n; i += 2) {
        const __m128i code = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(codes + i));
        const __m128i cx = compactBitsSse(code);
        const __m128i cy =
            compactBitsSse(_mm_srli_epi64(code, 1));
        const __m128i cz =
            compactBitsSse(_mm_srli_epi64(code, 2));
        _mm_store_si128(reinterpret_cast<__m128i *>(lane), cx);
        x[i] = static_cast<std::uint32_t>(lane[0]);
        x[i + 1] = static_cast<std::uint32_t>(lane[1]);
        _mm_store_si128(reinterpret_cast<__m128i *>(lane), cy);
        y[i] = static_cast<std::uint32_t>(lane[0]);
        y[i + 1] = static_cast<std::uint32_t>(lane[1]);
        _mm_store_si128(reinterpret_cast<__m128i *>(lane), cz);
        z[i] = static_cast<std::uint32_t>(lane[0]);
        z[i + 1] = static_cast<std::uint32_t>(lane[1]);
    }
    mortonDecodeBatchScalar(codes + i, n - i, x + i, y + i, z + i);
}

__attribute__((target("avx2"))) inline __m256i
expandBitsAvx2(__m256i v)
{
    v = _mm256_and_si256(
        _mm256_or_si256(v, _mm256_slli_epi64(v, 32)),
        _mm256_set1_epi64x(0x1f00000000ffffLL));
    v = _mm256_and_si256(
        _mm256_or_si256(v, _mm256_slli_epi64(v, 16)),
        _mm256_set1_epi64x(0x1f0000ff0000ffLL));
    v = _mm256_and_si256(
        _mm256_or_si256(v, _mm256_slli_epi64(v, 8)),
        _mm256_set1_epi64x(0x100f00f00f00f00fLL));
    v = _mm256_and_si256(
        _mm256_or_si256(v, _mm256_slli_epi64(v, 4)),
        _mm256_set1_epi64x(0x10c30c30c30c30c3LL));
    v = _mm256_and_si256(
        _mm256_or_si256(v, _mm256_slli_epi64(v, 2)),
        _mm256_set1_epi64x(0x1249249249249249LL));
    return v;
}

__attribute__((target("avx2"))) inline __m256i
compactBitsAvx2(__m256i v)
{
    v = _mm256_and_si256(
        v, _mm256_set1_epi64x(0x1249249249249249LL));
    v = _mm256_and_si256(
        _mm256_xor_si256(v, _mm256_srli_epi64(v, 2)),
        _mm256_set1_epi64x(0x10c30c30c30c30c3LL));
    v = _mm256_and_si256(
        _mm256_xor_si256(v, _mm256_srli_epi64(v, 4)),
        _mm256_set1_epi64x(0x100f00f00f00f00fLL));
    v = _mm256_and_si256(
        _mm256_xor_si256(v, _mm256_srli_epi64(v, 8)),
        _mm256_set1_epi64x(0x1f0000ff0000ffLL));
    v = _mm256_and_si256(
        _mm256_xor_si256(v, _mm256_srli_epi64(v, 16)),
        _mm256_set1_epi64x(0x1f00000000ffffLL));
    v = _mm256_and_si256(
        _mm256_xor_si256(v, _mm256_srli_epi64(v, 32)),
        _mm256_set1_epi64x(0x1fffffLL));
    return v;
}

__attribute__((target("avx2"))) inline __m256i
loadFourU16Avx2(const std::uint16_t *p)
{
    return _mm256_cvtepu16_epi64(_mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(p)));
}

__attribute__((target("avx2"))) void
mortonEncodeBatchAvx2(const std::uint16_t *x,
                      const std::uint16_t *y,
                      const std::uint16_t *z, std::size_t n,
                      std::uint64_t *codes)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i ex = expandBitsAvx2(loadFourU16Avx2(x + i));
        const __m256i ey = expandBitsAvx2(loadFourU16Avx2(y + i));
        const __m256i ez = expandBitsAvx2(loadFourU16Avx2(z + i));
        const __m256i code = _mm256_or_si256(
            ex, _mm256_or_si256(_mm256_slli_epi64(ey, 1),
                                _mm256_slli_epi64(ez, 2)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(codes + i), code);
    }
    mortonEncodeBatchScalar(x + i, y + i, z + i, n - i, codes + i);
}

__attribute__((target("avx2"))) void
mortonDecodeBatchAvx2(const std::uint64_t *codes, std::size_t n,
                      std::uint32_t *x, std::uint32_t *y,
                      std::uint32_t *z)
{
    std::size_t i = 0;
    alignas(32) std::uint64_t lane[4];
    for (; i + 4 <= n; i += 4) {
        const __m256i code = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(codes + i));
        const __m256i cx = compactBitsAvx2(code);
        const __m256i cy =
            compactBitsAvx2(_mm256_srli_epi64(code, 1));
        const __m256i cz =
            compactBitsAvx2(_mm256_srli_epi64(code, 2));
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), cx);
        for (int k = 0; k < 4; ++k)
            x[i + static_cast<std::size_t>(k)] =
                static_cast<std::uint32_t>(lane[k]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), cy);
        for (int k = 0; k < 4; ++k)
            y[i + static_cast<std::size_t>(k)] =
                static_cast<std::uint32_t>(lane[k]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), cz);
        for (int k = 0; k < 4; ++k)
            z[i + static_cast<std::size_t>(k)] =
                static_cast<std::uint32_t>(lane[k]);
    }
    mortonDecodeBatchScalar(codes + i, n - i, x + i, y + i, z + i);
}

#endif  // EDGEPCC_SIMD_X86

}  // namespace

void
mortonEncodeBatch(const std::uint16_t *x, const std::uint16_t *y,
                  const std::uint16_t *z, std::size_t n,
                  std::uint64_t *codes)
{
#if EDGEPCC_SIMD_X86
    switch (activeSimdLevel()) {
      case SimdLevel::kAvx2:
        mortonEncodeBatchAvx2(x, y, z, n, codes);
        return;
      case SimdLevel::kSse4:
        mortonEncodeBatchSse4(x, y, z, n, codes);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    mortonEncodeBatchScalar(x, y, z, n, codes);
}

void
mortonDecodeBatch(const std::uint64_t *codes, std::size_t n,
                  std::uint32_t *x, std::uint32_t *y,
                  std::uint32_t *z)
{
#if EDGEPCC_SIMD_X86
    switch (activeSimdLevel()) {
      case SimdLevel::kAvx2:
        mortonDecodeBatchAvx2(codes, n, x, y, z);
        return;
      case SimdLevel::kSse4:
        mortonDecodeBatchSse4(codes, n, x, y, z);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    mortonDecodeBatchScalar(codes, n, x, y, z);
}

}  // namespace edgepcc
