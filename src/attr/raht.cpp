#include "edgepcc/attr/raht.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/entropy/range_coder.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {

namespace {

/** One output slot of a sub-level pass. */
struct MergeEvent {
    std::uint8_t merged = 0;
    std::uint32_t w1 = 0;
    std::uint32_t w2 = 0;
};

/** Replayable merge schedule derived from the leaf codes. */
struct RahtSchedule {
    /** events[s] lists, in output order, what step s produced. */
    std::vector<std::vector<MergeEvent>> events;
    std::uint64_t total_merges = 0;
    std::uint64_t total_walk = 0;
};

/**
 * Computes the schedule by replaying the code/weight evolution.
 * Shared by encoder and decoder, so a lossless-geometry decoder
 * reproduces the encoder's structure exactly.
 */
RahtSchedule
computeSchedule(const std::vector<std::uint64_t> &leaf_codes,
                int depth)
{
    RahtSchedule schedule;
    const int steps = 3 * depth;
    schedule.events.resize(static_cast<std::size_t>(steps));

    std::vector<std::uint64_t> codes = leaf_codes;
    std::vector<std::uint32_t> weights(codes.size(), 1);

    for (int s = 0; s < steps; ++s) {
        auto &events = schedule.events[static_cast<std::size_t>(s)];
        events.reserve(codes.size());
        std::size_t out = 0;
        std::size_t i = 0;
        const std::size_t n = codes.size();
        while (i < n) {
            MergeEvent event;
            if (i + 1 < n &&
                (codes[i] >> 1) == (codes[i + 1] >> 1)) {
                event.merged = 1;
                event.w1 = weights[i];
                event.w2 = weights[i + 1];
                codes[out] = codes[i] >> 1;
                weights[out] = weights[i] + weights[i + 1];
                i += 2;
                ++schedule.total_merges;
            } else {
                event.w1 = weights[i];
                codes[out] = codes[i] >> 1;
                weights[out] = weights[i];
                i += 1;
            }
            events.push_back(event);
            ++out;
        }
        codes.resize(out);
        weights.resize(out);
        schedule.total_walk += n;
    }
    return schedule;
}

std::int64_t
quantize(double value, double qstep)
{
    return static_cast<std::int64_t>(std::llround(value / qstep));
}

constexpr const char kMagic[3] = {'R', 'A', 'H'};

}  // namespace

Expected<std::vector<std::uint8_t>>
encodeRaht(const VoxelCloud &sorted_cloud, const RahtConfig &config,
           WorkRecorder *recorder)
{
    ScopedTrace trace("attr.raht.encode");
    const std::size_t n = sorted_cloud.size();
    if (n == 0)
        return invalidArgument("encodeRaht: empty cloud");
    if (config.qstep <= 0.0)
        return invalidArgument("encodeRaht: qstep must be positive");

    ScopedStage stage(recorder, "attr.raht");

    std::vector<std::uint64_t> codes(n);
    mortonEncodeBatch(sorted_cloud.x().data(),
                      sorted_cloud.y().data(),
                      sorted_cloud.z().data(), n, codes.data());
    for (std::size_t i = 1; i < n; ++i) {
        if (codes[i - 1] >= codes[i])
            return invalidArgument(
                "encodeRaht: cloud must be Morton-sorted and "
                "duplicate-free");
    }

    const int depth = sorted_cloud.gridBits();
    const int steps = 3 * depth;

    // Active-node state; attrs evolve per channel.
    std::vector<std::uint32_t> weights(n, 1);
    std::vector<std::array<double, 3>> attrs(n);
    for (std::size_t i = 0; i < n; ++i) {
        attrs[i] = {static_cast<double>(sorted_cloud.r()[i]),
                    static_cast<double>(sorted_cloud.g()[i]),
                    static_cast<double>(sorted_cloud.b()[i])};
    }

    std::array<std::vector<std::int64_t>, 3> hc_q;
    std::uint64_t total_walk = 0;
    std::uint64_t total_merges = 0;
    std::vector<std::uint64_t> per_step_merges(
        static_cast<std::size_t>(steps), 0);

    std::vector<std::uint64_t> cur_codes = codes;
    std::size_t active = n;
    for (int s = 0; s < steps; ++s) {
        std::size_t out = 0;
        std::size_t i = 0;
        while (i < active) {
            if (i + 1 < active &&
                (cur_codes[i] >> 1) == (cur_codes[i + 1] >> 1)) {
                const double w1 = weights[i];
                const double w2 = weights[i + 1];
                const double inv = 1.0 / std::sqrt(w1 + w2);
                const double s1 = std::sqrt(w1) * inv;
                const double s2 = std::sqrt(w2) * inv;
                for (int c = 0; c < 3; ++c) {
                    const double a1 = attrs[i][c];
                    const double a2 = attrs[i + 1][c];
                    const double lc = s1 * a1 + s2 * a2;
                    const double hc = -s2 * a1 + s1 * a2;
                    attrs[out][c] = lc;
                    hc_q[static_cast<std::size_t>(c)].push_back(
                        quantize(hc, config.qstep));
                }
                cur_codes[out] = cur_codes[i] >> 1;
                weights[out] = static_cast<std::uint32_t>(w1 + w2);
                i += 2;
                ++total_merges;
                ++per_step_merges[static_cast<std::size_t>(s)];
            } else {
                attrs[out] = attrs[i];
                cur_codes[out] = cur_codes[i] >> 1;
                weights[out] = weights[i];
                i += 1;
            }
            ++out;
        }
        total_walk += active;
        active = out;
    }

    recordKernel(recorder,
                 KernelWork{.name = "attr.raht_transform",
                            .resource = ExecResource::kCpuSequential,
                            .invocations =
                                static_cast<std::uint64_t>(steps),
                            .items = n,
                            .ops = total_walk * 6 +
                                   total_merges * 60,
                            .bytes = total_walk * 48});

    // Serialize: per channel, DC then the HC stream, each varint
    // coded and entropy compressed with its own adaptive model.
    BitWriter writer;
    writer.writeBits(static_cast<std::uint8_t>(kMagic[0]), 8);
    writer.writeBits(static_cast<std::uint8_t>(kMagic[1]), 8);
    writer.writeBits(static_cast<std::uint8_t>(kMagic[2]), 8);
    writer.writeVarint(
        static_cast<std::uint64_t>(std::llround(config.qstep * 1000)));
    writer.writeVarint(n);
    writer.writeVarint(total_merges);
    // Per-step merge counts let the decoder verify that the
    // replayed merge structure matches the encoder's (a corrupted
    // or mismatched geometry would silently decode garbage
    // otherwise).
    for (const std::uint64_t merges : per_step_merges)
        writer.writeVarint(merges);

    std::uint64_t entropy_bytes_in = 0;
    for (int c = 0; c < 3; ++c) {
        BitWriter channel;
        channel.writeSignedVarint(
            quantize(attrs[0][static_cast<std::size_t>(c)],
                     config.qstep));
        for (const std::int64_t coeff :
             hc_q[static_cast<std::size_t>(c)]) {
            channel.writeSignedVarint(coeff);
        }
        const std::vector<std::uint8_t> raw = channel.take();
        const std::vector<std::uint8_t> packed =
            entropyCompress(raw);
        entropy_bytes_in += raw.size();
        writer.writeVarint(raw.size());
        writer.writeVarint(packed.size());
        writer.writeBytes(packed.data(), packed.size());
    }
    recordKernel(recorder,
                 KernelWork{.name = "attr.raht_entropy",
                            .resource = ExecResource::kCpuSequential,
                            .invocations = 3,
                            .items = entropy_bytes_in,
                            .ops = entropy_bytes_in * 24,
                            .bytes = entropy_bytes_in * 2});

    return writer.take();
}

Status
decodeRahtInto(const std::vector<std::uint8_t> &payload,
               VoxelCloud &cloud, WorkRecorder *recorder)
{
    ScopedTrace trace("attr.raht.decode");
    const std::size_t n = cloud.size();
    if (n == 0)
        return invalidArgument("decodeRahtInto: empty cloud");

    ScopedStage stage(recorder, "attrdec.raht");

    BitReader reader(payload);
    if (reader.readBits(8) != 'R' || reader.readBits(8) != 'A' ||
        reader.readBits(8) != 'H') {
        return corruptBitstream("RAHT payload: bad magic");
    }
    const double qstep =
        static_cast<double>(reader.readVarint()) / 1000.0;
    const std::size_t num_points =
        static_cast<std::size_t>(reader.readVarint());
    const std::uint64_t total_merges = reader.readVarint();
    if (reader.overrun() || qstep <= 0.0)
        return corruptBitstream("RAHT payload: bad header");
    if (num_points != n)
        return corruptBitstream(
            "RAHT payload: point count mismatch with geometry");

    const int depth = cloud.gridBits();
    const int steps = 3 * depth;
    std::vector<std::uint64_t> stored_step_merges(
        static_cast<std::size_t>(steps));
    for (auto &merges : stored_step_merges)
        merges = reader.readVarint();
    if (reader.overrun())
        return corruptBitstream("RAHT payload: truncated header");

    // Decode per-channel coefficient streams.
    std::array<std::vector<std::int64_t>, 3> coeffs;
    for (int c = 0; c < 3; ++c) {
        const std::size_t raw_size =
            static_cast<std::size_t>(reader.readVarint());
        const std::size_t packed_size =
            static_cast<std::size_t>(reader.readVarint());
        reader.alignToByte();
        if (reader.overrun() ||
            reader.byteOffset() + packed_size > payload.size())
            return corruptBitstream("RAHT payload: truncated");
        std::vector<std::uint8_t> packed(
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            packed_size));
        auto raw = entropyDecompress(packed, raw_size);
        if (!raw)
            return raw.status();
        BitReader channel(*raw);
        auto &list = coeffs[static_cast<std::size_t>(c)];
        list.reserve(total_merges + 1);
        for (std::uint64_t k = 0; k < total_merges + 1; ++k)
            list.push_back(channel.readSignedVarint());
        if (channel.overrun())
            return corruptBitstream(
                "RAHT payload: coefficient stream truncated");
        // Skip the consumed bytes in the outer reader.
        for (std::size_t k = 0; k < packed_size; ++k)
            reader.readBits(8);
    }

    // Rebuild the merge schedule from the decoded geometry.
    std::vector<std::uint64_t> codes(n);
    mortonEncodeBatch(cloud.x().data(), cloud.y().data(),
                      cloud.z().data(), n, codes.data());
    const RahtSchedule schedule = computeSchedule(codes, depth);
    if (schedule.total_merges != total_merges)
        return corruptBitstream(
            "RAHT payload: merge structure mismatch");

    // Per-step HC offsets in emission order.
    std::vector<std::uint64_t> hc_offset(
        static_cast<std::size_t>(steps) + 1, 0);
    for (int s = 0; s < steps; ++s) {
        std::uint64_t merges = 0;
        for (const MergeEvent &event :
             schedule.events[static_cast<std::size_t>(s)]) {
            merges += event.merged;
        }
        if (merges != stored_step_merges[static_cast<std::size_t>(s)])
            return corruptBitstream(
                "RAHT payload: per-step merge structure mismatch");
        hc_offset[static_cast<std::size_t>(s) + 1] =
            hc_offset[static_cast<std::size_t>(s)] + merges;
    }

    // Inverse pass: start from the root (DC), expand downward.
    std::vector<std::array<double, 3>> attrs(1);
    for (int c = 0; c < 3; ++c) {
        attrs[0][static_cast<std::size_t>(c)] =
            static_cast<double>(
                coeffs[static_cast<std::size_t>(c)][0]) *
            qstep;
    }

    std::uint64_t inverse_ops = 0;
    for (int s = steps - 1; s >= 0; --s) {
        const auto &events =
            schedule.events[static_cast<std::size_t>(s)];
        std::vector<std::array<double, 3>> expanded;
        expanded.reserve(events.size() * 2);
        std::uint64_t hc_index =
            hc_offset[static_cast<std::size_t>(s)];
        for (std::size_t j = 0; j < events.size(); ++j) {
            const MergeEvent &event = events[j];
            if (event.merged) {
                const double w1 = event.w1;
                const double w2 = event.w2;
                const double inv = 1.0 / std::sqrt(w1 + w2);
                const double s1 = std::sqrt(w1) * inv;
                const double s2 = std::sqrt(w2) * inv;
                std::array<double, 3> a1{};
                std::array<double, 3> a2{};
                for (int c = 0; c < 3; ++c) {
                    const double lc =
                        attrs[j][static_cast<std::size_t>(c)];
                    const double hc =
                        static_cast<double>(
                            coeffs[static_cast<std::size_t>(c)]
                                  [hc_index + 1]) *
                        qstep;
                    a1[static_cast<std::size_t>(c)] =
                        s1 * lc - s2 * hc;
                    a2[static_cast<std::size_t>(c)] =
                        s2 * lc + s1 * hc;
                }
                expanded.push_back(a1);
                expanded.push_back(a2);
                ++hc_index;
                inverse_ops += 60;
            } else {
                expanded.push_back(attrs[j]);
                inverse_ops += 6;
            }
        }
        attrs = std::move(expanded);
    }
    if (attrs.size() != n)
        return internalError("RAHT inverse: node count mismatch");

    for (std::size_t i = 0; i < n; ++i) {
        for (int c = 0; c < 3; ++c) {
            const double v = std::clamp(
                attrs[i][static_cast<std::size_t>(c)], 0.0, 255.0);
            const auto byte =
                static_cast<std::uint8_t>(std::lround(v));
            switch (c) {
              case 0: cloud.mutableR()[i] = byte; break;
              case 1: cloud.mutableG()[i] = byte; break;
              default: cloud.mutableB()[i] = byte; break;
            }
        }
    }
    recordKernel(recorder,
                 KernelWork{.name = "attrdec.raht_inverse",
                            .resource = ExecResource::kCpuSequential,
                            .invocations =
                                static_cast<std::uint64_t>(steps),
                            .items = n,
                            .ops = inverse_ops +
                                   schedule.total_walk * 4,
                            .bytes = schedule.total_walk * 48});
    return Status::ok();
}

}  // namespace edgepcc
