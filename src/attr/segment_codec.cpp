#include "edgepcc/attr/segment_codec.h"

#include <algorithm>

#include "edgepcc/common/check.h"
#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/platform/arena.h"
#include "edgepcc/platform/simd.h"

#if EDGEPCC_SIMD_X86
#include <immintrin.h>
#endif

namespace edgepcc {

namespace {

constexpr std::uint8_t kFlagTwoLayer = 1u << 0;

/** Round-to-nearest division, symmetric around zero. Deliberately
 *  scalar: this is the one spot where a float-based SIMD division
 *  could silently change rounding, and the bitstream is pinned by
 *  goldens (docs/PERFORMANCE.md "What stays scalar"). */
std::int64_t
roundDiv(std::int64_t value, std::int64_t divisor)
{
    if (value >= 0)
        return (value + divisor / 2) / divisor;
    return -((-value + divisor / 2) / divisor);
}

/** floor((a+b)/2) that is safe for negative sums. */
std::int32_t
midOf(std::int32_t lo, std::int32_t hi)
{
    const std::int64_t sum =
        static_cast<std::int64_t>(lo) + static_cast<std::int64_t>(hi);
    return static_cast<std::int32_t>(sum >> 1);
}

void
minMaxI32Scalar(const std::int32_t *v, std::size_t n,
                std::int32_t &out_min, std::int32_t &out_max)
{
    std::int32_t vmin = v[0];
    std::int32_t vmax = v[0];
    for (std::size_t i = 1; i < n; ++i) {
        vmin = std::min(vmin, v[i]);
        vmax = std::max(vmax, v[i]);
    }
    out_min = vmin;
    out_max = vmax;
}

std::uint64_t
maxZigzagI32Scalar(const std::int32_t *v, std::size_t n,
                   std::int32_t mid2)
{
    std::uint64_t max_zig = 0;
    for (std::size_t i = 0; i < n; ++i)
        max_zig = std::max(max_zig, zigzagEncode(v[i] - mid2));
    return max_zig;
}

#if EDGEPCC_SIMD_X86

__attribute__((target("sse4.2"))) void
minMaxI32Sse4(const std::int32_t *v, std::size_t n,
              std::int32_t &out_min, std::int32_t &out_max)
{
    std::size_t i = 0;
    std::int32_t vmin = v[0];
    std::int32_t vmax = v[0];
    if (n >= 4) {
        __m128i mn = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v));
        __m128i mx = mn;
        for (i = 4; i + 4 <= n; i += 4) {
            const __m128i lane = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(v + i));
            mn = _mm_min_epi32(mn, lane);
            mx = _mm_max_epi32(mx, lane);
        }
        alignas(16) std::int32_t tmp[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(tmp), mn);
        vmin = std::min(std::min(tmp[0], tmp[1]),
                        std::min(tmp[2], tmp[3]));
        _mm_store_si128(reinterpret_cast<__m128i *>(tmp), mx);
        vmax = std::max(std::max(tmp[0], tmp[1]),
                        std::max(tmp[2], tmp[3]));
    }
    for (; i < n; ++i) {
        vmin = std::min(vmin, v[i]);
        vmax = std::max(vmax, v[i]);
    }
    out_min = vmin;
    out_max = vmax;
}

__attribute__((target("avx2"))) void
minMaxI32Avx2(const std::int32_t *v, std::size_t n,
              std::int32_t &out_min, std::int32_t &out_max)
{
    std::size_t i = 0;
    std::int32_t vmin = v[0];
    std::int32_t vmax = v[0];
    if (n >= 8) {
        __m256i mn = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v));
        __m256i mx = mn;
        for (i = 8; i + 8 <= n; i += 8) {
            const __m256i lane = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(v + i));
            mn = _mm256_min_epi32(mn, lane);
            mx = _mm256_max_epi32(mx, lane);
        }
        alignas(32) std::int32_t tmp[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), mn);
        for (int k = 0; k < 8; ++k)
            vmin = std::min(vmin, tmp[k]);
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), mx);
        for (int k = 0; k < 8; ++k)
            vmax = std::max(vmax, tmp[k]);
    }
    for (; i < n; ++i) {
        vmin = std::min(vmin, v[i]);
        vmax = std::max(vmax, v[i]);
    }
    out_min = vmin;
    out_max = vmax;
}

/**
 * max of zigzagEncode(v[i] - mid2) on four 64-bit lanes. AVX2 has
 * neither an arithmetic 64-bit right shift nor an unsigned 64-bit
 * max, so the sign fill uses cmpgt(0, x) (exactly x >> 63) and the
 * max uses a sign-flipped signed compare.
 */
__attribute__((target("avx2"))) std::uint64_t
maxZigzagI32Avx2(const std::int32_t *v, std::size_t n,
                 std::int32_t mid2)
{
    std::size_t i = 0;
    std::uint64_t max_zig = 0;
    if (n >= 4) {
        const __m256i mid = _mm256_set1_epi64x(mid2);
        const __m256i zero = _mm256_setzero_si256();
        const __m256i sign_flip =
            _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
        __m256i best = zero;
        for (; i + 4 <= n; i += 4) {
            const __m256i w = _mm256_sub_epi64(
                _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(v + i))),
                mid);
            const __m256i zig = _mm256_xor_si256(
                _mm256_slli_epi64(w, 1),
                _mm256_cmpgt_epi64(zero, w));
            const __m256i gt = _mm256_cmpgt_epi64(
                _mm256_xor_si256(zig, sign_flip),
                _mm256_xor_si256(best, sign_flip));
            best = _mm256_blendv_epi8(best, zig, gt);
        }
        alignas(32) std::uint64_t tmp[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp),
                           best);
        for (int k = 0; k < 4; ++k)
            max_zig = std::max(max_zig, tmp[k]);
    }
    for (; i < n; ++i)
        max_zig = std::max(max_zig, zigzagEncode(v[i] - mid2));
    return max_zig;
}

#endif  // EDGEPCC_SIMD_X86

void
minMaxI32(const std::int32_t *v, std::size_t n,
          std::int32_t &out_min, std::int32_t &out_max)
{
#if EDGEPCC_SIMD_X86
    switch (activeSimdLevel()) {
      case SimdLevel::kAvx2:
        minMaxI32Avx2(v, n, out_min, out_max);
        return;
      case SimdLevel::kSse4:
        minMaxI32Sse4(v, n, out_min, out_max);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    minMaxI32Scalar(v, n, out_min, out_max);
}

std::uint64_t
maxZigzagI32(const std::int32_t *v, std::size_t n,
             std::int32_t mid2)
{
#if EDGEPCC_SIMD_X86
    if (activeSimdLevel() >= SimdLevel::kAvx2)
        return maxZigzagI32Avx2(v, n, mid2);
#endif
    return maxZigzagI32Scalar(v, n, mid2);
}

}  // namespace

SegmentLayout
makeSegmentLayout(std::size_t n, const SegmentCodecConfig &config)
{
    SegmentLayout layout;
    std::uint32_t segments = config.num_segments;
    if (segments == 0) {
        segments = static_cast<std::uint32_t>(
            std::max<std::size_t>(1, n / 24));
    }
    segments = static_cast<std::uint32_t>(std::min<std::size_t>(
        segments, std::max<std::size_t>(1, n)));
    layout.num_segments = segments;
    layout.points_per_segment = static_cast<std::uint32_t>(
        (n + segments - 1) / segments);
    // Recompute the segment count so no empty trailing segments
    // exist (ceil division can overshoot).
    layout.num_segments = static_cast<std::uint32_t>(
        (n + layout.points_per_segment - 1) /
        layout.points_per_segment);
    return layout;
}

Expected<std::vector<std::uint8_t>>
encodeSegmentAttr(const AttrChannels &channels,
                  const SegmentCodecConfig &config,
                  WorkRecorder *recorder)
{
    const std::size_t n = channels[0].size();
    if (n == 0)
        return invalidArgument("encodeSegmentAttr: no values");
    if (channels[1].size() != n || channels[2].size() != n)
        return invalidArgument(
            "encodeSegmentAttr: channel size mismatch");
    if (config.quant_step == 0)
        return invalidArgument(
            "encodeSegmentAttr: quant_step must be >= 1");

    TracedStage stage(recorder, "attr.segment");

    const SegmentLayout layout = makeSegmentLayout(n, config);
    const auto q = static_cast<std::int64_t>(config.quant_step);

    BitWriter writer;
    writer.writeBits('S', 8);
    writer.writeBits('A', 8);
    writer.writeBits('T', 8);
    writer.writeBits(config.two_layer ? kFlagTwoLayer : 0, 8);
    writer.writeVarint(n);
    writer.writeVarint(layout.num_segments);
    writer.writeVarint(config.quant_step);

    // Per-segment quantized scratch, SoA and arena-backed inside a
    // frame (heap fallback for direct API calls outside one). The
    // min/max and zigzag-max scans below are SIMD-dispatched; the
    // quantization itself (roundDiv) and the variable-width bit
    // pack stay scalar by design.
    const std::size_t max_segment = layout.points_per_segment;
    FrameArena *arena = currentFrameArena();
    std::vector<std::int32_t> quantized_heap;
    std::int32_t *quantized = nullptr;
    if (arena != nullptr) {
        quantized = arena->allocateArray<std::int32_t>(max_segment);
    } else {
        quantized_heap.resize(max_segment);
        quantized = quantized_heap.data();
    }
    for (std::uint32_t s = 0; s < layout.num_segments; ++s) {
        const std::size_t lo = layout.begin(s);
        const std::size_t hi = layout.end(s, n);
        const std::size_t count = hi - lo;
        for (int c = 0; c < 3; ++c) {
            const auto &values =
                channels[static_cast<std::size_t>(c)];

            // ---- layer 1: mid-range base + quantized residuals --
            std::int32_t vmin = 0;
            std::int32_t vmax = 0;
            minMaxI32(values.data() + lo, count, vmin, vmax);
            const std::int32_t mid1 = midOf(vmin, vmax);
            for (std::size_t i = 0; i < count; ++i) {
                quantized[i] = static_cast<std::int32_t>(
                    roundDiv(values[lo + i] - mid1, q));
            }

            // ---- layer 2: lossless base + packed residuals -----
            std::int32_t mid2 = 0;
            if (config.two_layer) {
                std::int32_t qmin = 0;
                std::int32_t qmax = 0;
                minMaxI32(quantized, count, qmin, qmax);
                mid2 = midOf(qmin, qmax);
            }
            const std::uint64_t max_zig =
                maxZigzagI32(quantized, count, mid2);
            const int width = bitWidth(max_zig);

            writer.writeSignedVarint(mid1);
            writer.writeSignedVarint(mid2);
            writer.writeBits(static_cast<std::uint64_t>(width), 6);
            for (std::size_t i = 0; i < count; ++i)
                writer.writeBits(zigzagEncode(quantized[i] - mid2),
                                 width);
        }
    }

    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_minmax",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = layout.num_segments,
                            .ops = n * 3 * 2,
                            .bytes = n * 3 * 4});
    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_residual",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3 * 4,
                            .bytes = n * 3 * 8});
    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_addressgen",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = layout.num_segments,
                            .ops = layout.num_segments * 12ull,
                            .bytes = layout.num_segments * 16ull});
    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_pack",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3 * 3,
                            .bytes = n * 3 * 5});

    return writer.take();
}

Expected<AttrChannels>
decodeSegmentAttr(const std::vector<std::uint8_t> &payload,
                  WorkRecorder *recorder)
{
    TracedStage stage(recorder, "attrdec.segment");

    BitReader reader(payload);
    if (reader.readBits(8) != 'S' || reader.readBits(8) != 'A' ||
        reader.readBits(8) != 'T') {
        return corruptBitstream("segment payload: bad magic");
    }
    const std::uint8_t flags =
        static_cast<std::uint8_t>(reader.readBits(8));
    (void)flags;  // layer-2 presence is implicit in the mids
    const std::size_t n =
        static_cast<std::size_t>(reader.readVarint());
    const std::uint64_t num_segments_raw = reader.readVarint();
    const std::uint64_t q_raw = reader.readVarint();
    EDGEPCC_CHECK_CORRUPT(!reader.overrun() && n != 0 &&
                              num_segments_raw != 0 && q_raw != 0,
                          "segment payload: bad header");
    // All three counts are attacker-controlled: a flipped varint
    // continuation bit can claim 2^60 points and the channel
    // resize below must not be the first place that notices.
    EDGEPCC_CHECK_CORRUPT(n <= kMaxDecodeItems,
                          "segment payload: implausible point count");
    EDGEPCC_CHECK_CORRUPT(num_segments_raw <= n,
                          "segment payload: more segments than points");
    EDGEPCC_CHECK_CORRUPT(q_raw <= (std::uint64_t{1} << 31),
                          "segment payload: implausible quant step");
    const auto num_segments =
        static_cast<std::uint32_t>(num_segments_raw);
    const auto q = static_cast<std::int64_t>(q_raw);

    SegmentLayout layout;
    layout.num_segments = num_segments;
    layout.points_per_segment = static_cast<std::uint32_t>(
        (n + num_segments - 1) / num_segments);

    AttrChannels channels;
    for (auto &channel : channels)
        channel.resize(n);

    for (std::uint32_t s = 0; s < num_segments; ++s) {
        const std::size_t lo = layout.begin(s);
        const std::size_t hi = layout.end(s, n);
        EDGEPCC_CHECK_CORRUPT(lo < n,
                              "segment payload: segment out of range");
        for (int c = 0; c < 3; ++c) {
            const auto mid1 = static_cast<std::int64_t>(
                reader.readSignedVarint());
            const auto mid2 = static_cast<std::int64_t>(
                reader.readSignedVarint());
            const int width =
                static_cast<int>(reader.readBits(6));
            auto &values = channels[static_cast<std::size_t>(c)];
            for (std::size_t i = lo; i < hi; ++i) {
                const std::int64_t res2 =
                    zigzagDecode(reader.readBits(width));
                // Reconstruct in unsigned space: corrupt mids can
                // make the signed arithmetic overflow, which is UB;
                // two's-complement wrap-around yields the same bits
                // on valid streams and garbage-but-defined values
                // on corrupt ones (rejected downstream).
                const std::uint64_t scaled =
                    (static_cast<std::uint64_t>(mid2) +
                     static_cast<std::uint64_t>(res2)) *
                    static_cast<std::uint64_t>(q);
                values[i] = static_cast<std::int32_t>(
                    static_cast<std::uint64_t>(mid1) + scaled);
            }
        }
    }
    EDGEPCC_CHECK_CORRUPT(!reader.overrun(),
                          "segment payload: truncated");

    recordKernel(recorder,
                 KernelWork{.name = "attrdec.seg_unpack",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3 * 4,
                            .bytes = n * 3 * 6});
    return channels;
}

}  // namespace edgepcc
