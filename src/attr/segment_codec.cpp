#include "edgepcc/attr/segment_codec.h"

#include <algorithm>

#include "edgepcc/common/check.h"
#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"

namespace edgepcc {

namespace {

constexpr std::uint8_t kFlagTwoLayer = 1u << 0;

/** Round-to-nearest division, symmetric around zero. */
std::int64_t
roundDiv(std::int64_t value, std::int64_t divisor)
{
    if (value >= 0)
        return (value + divisor / 2) / divisor;
    return -((-value + divisor / 2) / divisor);
}

/** floor((a+b)/2) that is safe for negative sums. */
std::int32_t
midOf(std::int32_t lo, std::int32_t hi)
{
    const std::int64_t sum =
        static_cast<std::int64_t>(lo) + static_cast<std::int64_t>(hi);
    return static_cast<std::int32_t>(sum >> 1);
}

}  // namespace

SegmentLayout
makeSegmentLayout(std::size_t n, const SegmentCodecConfig &config)
{
    SegmentLayout layout;
    std::uint32_t segments = config.num_segments;
    if (segments == 0) {
        segments = static_cast<std::uint32_t>(
            std::max<std::size_t>(1, n / 24));
    }
    segments = static_cast<std::uint32_t>(std::min<std::size_t>(
        segments, std::max<std::size_t>(1, n)));
    layout.num_segments = segments;
    layout.points_per_segment = static_cast<std::uint32_t>(
        (n + segments - 1) / segments);
    // Recompute the segment count so no empty trailing segments
    // exist (ceil division can overshoot).
    layout.num_segments = static_cast<std::uint32_t>(
        (n + layout.points_per_segment - 1) /
        layout.points_per_segment);
    return layout;
}

Expected<std::vector<std::uint8_t>>
encodeSegmentAttr(const AttrChannels &channels,
                  const SegmentCodecConfig &config,
                  WorkRecorder *recorder)
{
    const std::size_t n = channels[0].size();
    if (n == 0)
        return invalidArgument("encodeSegmentAttr: no values");
    if (channels[1].size() != n || channels[2].size() != n)
        return invalidArgument(
            "encodeSegmentAttr: channel size mismatch");
    if (config.quant_step == 0)
        return invalidArgument(
            "encodeSegmentAttr: quant_step must be >= 1");

    TracedStage stage(recorder, "attr.segment");

    const SegmentLayout layout = makeSegmentLayout(n, config);
    const auto q = static_cast<std::int64_t>(config.quant_step);

    BitWriter writer;
    writer.writeBits('S', 8);
    writer.writeBits('A', 8);
    writer.writeBits('T', 8);
    writer.writeBits(config.two_layer ? kFlagTwoLayer : 0, 8);
    writer.writeVarint(n);
    writer.writeVarint(layout.num_segments);
    writer.writeVarint(config.quant_step);

    std::vector<std::int32_t> quantized;  // reused per segment
    for (std::uint32_t s = 0; s < layout.num_segments; ++s) {
        const std::size_t lo = layout.begin(s);
        const std::size_t hi = layout.end(s, n);
        for (int c = 0; c < 3; ++c) {
            const auto &values =
                channels[static_cast<std::size_t>(c)];

            // ---- layer 1: mid-range base + quantized residuals --
            std::int32_t vmin = values[lo];
            std::int32_t vmax = values[lo];
            for (std::size_t i = lo + 1; i < hi; ++i) {
                vmin = std::min(vmin, values[i]);
                vmax = std::max(vmax, values[i]);
            }
            const std::int32_t mid1 = midOf(vmin, vmax);
            quantized.clear();
            for (std::size_t i = lo; i < hi; ++i) {
                quantized.push_back(static_cast<std::int32_t>(
                    roundDiv(values[i] - mid1, q)));
            }

            // ---- layer 2: lossless base + packed residuals -----
            std::int32_t mid2 = 0;
            if (config.two_layer) {
                std::int32_t qmin = quantized.front();
                std::int32_t qmax = quantized.front();
                for (const std::int32_t v : quantized) {
                    qmin = std::min(qmin, v);
                    qmax = std::max(qmax, v);
                }
                mid2 = midOf(qmin, qmax);
            }
            std::uint64_t max_zig = 0;
            for (const std::int32_t v : quantized) {
                max_zig = std::max(
                    max_zig, zigzagEncode(v - mid2));
            }
            const int width = bitWidth(max_zig);

            writer.writeSignedVarint(mid1);
            writer.writeSignedVarint(mid2);
            writer.writeBits(static_cast<std::uint64_t>(width), 6);
            for (const std::int32_t v : quantized)
                writer.writeBits(zigzagEncode(v - mid2), width);
        }
    }

    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_minmax",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = layout.num_segments,
                            .ops = n * 3 * 2,
                            .bytes = n * 3 * 4});
    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_residual",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3 * 4,
                            .bytes = n * 3 * 8});
    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_addressgen",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = layout.num_segments,
                            .ops = layout.num_segments * 12ull,
                            .bytes = layout.num_segments * 16ull});
    recordKernel(recorder,
                 KernelWork{.name = "attr.seg_pack",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3 * 3,
                            .bytes = n * 3 * 5});

    return writer.take();
}

Expected<AttrChannels>
decodeSegmentAttr(const std::vector<std::uint8_t> &payload,
                  WorkRecorder *recorder)
{
    TracedStage stage(recorder, "attrdec.segment");

    BitReader reader(payload);
    if (reader.readBits(8) != 'S' || reader.readBits(8) != 'A' ||
        reader.readBits(8) != 'T') {
        return corruptBitstream("segment payload: bad magic");
    }
    const std::uint8_t flags =
        static_cast<std::uint8_t>(reader.readBits(8));
    (void)flags;  // layer-2 presence is implicit in the mids
    const std::size_t n =
        static_cast<std::size_t>(reader.readVarint());
    const std::uint64_t num_segments_raw = reader.readVarint();
    const std::uint64_t q_raw = reader.readVarint();
    EDGEPCC_CHECK_CORRUPT(!reader.overrun() && n != 0 &&
                              num_segments_raw != 0 && q_raw != 0,
                          "segment payload: bad header");
    // All three counts are attacker-controlled: a flipped varint
    // continuation bit can claim 2^60 points and the channel
    // resize below must not be the first place that notices.
    EDGEPCC_CHECK_CORRUPT(n <= kMaxDecodeItems,
                          "segment payload: implausible point count");
    EDGEPCC_CHECK_CORRUPT(num_segments_raw <= n,
                          "segment payload: more segments than points");
    EDGEPCC_CHECK_CORRUPT(q_raw <= (std::uint64_t{1} << 31),
                          "segment payload: implausible quant step");
    const auto num_segments =
        static_cast<std::uint32_t>(num_segments_raw);
    const auto q = static_cast<std::int64_t>(q_raw);

    SegmentLayout layout;
    layout.num_segments = num_segments;
    layout.points_per_segment = static_cast<std::uint32_t>(
        (n + num_segments - 1) / num_segments);

    AttrChannels channels;
    for (auto &channel : channels)
        channel.resize(n);

    for (std::uint32_t s = 0; s < num_segments; ++s) {
        const std::size_t lo = layout.begin(s);
        const std::size_t hi = layout.end(s, n);
        EDGEPCC_CHECK_CORRUPT(lo < n,
                              "segment payload: segment out of range");
        for (int c = 0; c < 3; ++c) {
            const auto mid1 = static_cast<std::int64_t>(
                reader.readSignedVarint());
            const auto mid2 = static_cast<std::int64_t>(
                reader.readSignedVarint());
            const int width =
                static_cast<int>(reader.readBits(6));
            auto &values = channels[static_cast<std::size_t>(c)];
            for (std::size_t i = lo; i < hi; ++i) {
                const std::int64_t res2 =
                    zigzagDecode(reader.readBits(width));
                // Reconstruct in unsigned space: corrupt mids can
                // make the signed arithmetic overflow, which is UB;
                // two's-complement wrap-around yields the same bits
                // on valid streams and garbage-but-defined values
                // on corrupt ones (rejected downstream).
                const std::uint64_t scaled =
                    (static_cast<std::uint64_t>(mid2) +
                     static_cast<std::uint64_t>(res2)) *
                    static_cast<std::uint64_t>(q);
                values[i] = static_cast<std::int32_t>(
                    static_cast<std::uint64_t>(mid1) + scaled);
            }
        }
    }
    EDGEPCC_CHECK_CORRUPT(!reader.overrun(),
                          "segment payload: truncated");

    recordKernel(recorder,
                 KernelWork{.name = "attrdec.seg_unpack",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3 * 4,
                            .bytes = n * 3 * 6});
    return channels;
}

}  // namespace edgepcc
