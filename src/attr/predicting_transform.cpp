#include "edgepcc/attr/predicting_transform.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/entropy/range_coder.h"

namespace edgepcc {

namespace {

constexpr const char kMagic[3] = {'P', 'R', 'D'};

/** Squared distance between two voxels of one cloud. */
double
squaredDistance(const VoxelCloud &cloud, std::size_t a,
                std::size_t b)
{
    const double dx = static_cast<double>(cloud.x()[a]) -
                      static_cast<double>(cloud.x()[b]);
    const double dy = static_cast<double>(cloud.y()[a]) -
                      static_cast<double>(cloud.y()[b]);
    const double dz = static_cast<double>(cloud.z()[a]) -
                      static_cast<double>(cloud.z()[b]);
    return dx * dx + dy * dy + dz * dz;
}

/** One predicted point: neighbours and their weights. */
struct Prediction {
    std::array<std::size_t, 4> neighbor{};
    std::array<double, 4> weight{};
    int count = 0;
};

/**
 * Builds the prediction for point `i` at LOD step `step` from
 * already-coded flanking points (indices that are multiples of
 * 2*step), using inverse-squared-distance weights.
 */
Prediction
buildPrediction(const VoxelCloud &cloud, std::size_t i,
                std::size_t step, std::size_t n, int max_neighbors)
{
    Prediction pred;
    const std::size_t stride = 2 * step;
    const std::size_t candidates[4] = {
        i >= step ? i - step : n,            // previous coded
        i + step < n ? i + step : n,         // next coded
        i >= step + stride ? i - step - stride : n,
        i + step + stride < n ? i + step + stride : n,
    };
    for (const std::size_t candidate : candidates) {
        if (candidate >= n || pred.count >= max_neighbors)
            continue;
        const double d2 = squaredDistance(cloud, i, candidate);
        pred.neighbor[static_cast<std::size_t>(pred.count)] =
            candidate;
        pred.weight[static_cast<std::size_t>(pred.count)] =
            1.0 / (d2 + 1e-6);
        ++pred.count;
    }
    return pred;
}

std::int64_t
quantize(double value, double qstep)
{
    return static_cast<std::int64_t>(std::llround(value / qstep));
}

/**
 * Shared coarse-to-fine traversal. `Visit` is called once per point
 * in coding order with (index, predicted value per channel).
 * Reconstructed values must be written back by the caller so later
 * predictions see them.
 */
template <typename Visit>
void
traverseLods(const VoxelCloud &cloud, int lod_levels,
             int max_neighbors,
             std::vector<std::array<double, 3>> &recon,
             const Visit &visit)
{
    const std::size_t n = cloud.size();
    int levels = lod_levels;
    while (levels > 0 && (std::size_t{1} << levels) >= n)
        --levels;

    // Base LOD: every 2^levels-th point, delta-predicted from the
    // previous base point.
    const std::size_t base_step = std::size_t{1} << levels;
    std::size_t previous_base = n;
    for (std::size_t i = 0; i < n; i += base_step) {
        std::array<double, 3> predicted{128.0, 128.0, 128.0};
        if (previous_base < n)
            predicted = recon[previous_base];
        visit(i, predicted);
        previous_base = i;
    }

    // Refinement LODs, coarse to fine.
    for (int level = levels - 1; level >= 0; --level) {
        const std::size_t step = std::size_t{1} << level;
        for (std::size_t i = step; i < n; i += 2 * step) {
            const Prediction pred = buildPrediction(
                cloud, i, step, n, max_neighbors);
            std::array<double, 3> predicted{128.0, 128.0, 128.0};
            if (pred.count > 0) {
                double wsum = 0.0;
                std::array<double, 3> acc{0.0, 0.0, 0.0};
                for (int k = 0; k < pred.count; ++k) {
                    const double w =
                        pred.weight[static_cast<std::size_t>(k)];
                    const std::size_t j = pred.neighbor[
                        static_cast<std::size_t>(k)];
                    wsum += w;
                    for (int c = 0; c < 3; ++c) {
                        acc[static_cast<std::size_t>(c)] +=
                            w * recon[j][static_cast<std::size_t>(
                                    c)];
                    }
                }
                for (int c = 0; c < 3; ++c) {
                    predicted[static_cast<std::size_t>(c)] =
                        acc[static_cast<std::size_t>(c)] / wsum;
                }
            }
            visit(i, predicted);
        }
    }
}

}  // namespace

Expected<std::vector<std::uint8_t>>
encodePredicting(const VoxelCloud &sorted_cloud,
                 const PredictingConfig &config,
                 WorkRecorder *recorder)
{
    ScopedTrace trace("attr.pred.encode");
    const std::size_t n = sorted_cloud.size();
    if (n == 0)
        return invalidArgument("encodePredicting: empty cloud");
    if (config.qstep <= 0.0)
        return invalidArgument(
            "encodePredicting: qstep must be positive");
    if (config.num_neighbors < 1 || config.num_neighbors > 4)
        return invalidArgument(
            "encodePredicting: num_neighbors must be in [1,4]");

    ScopedStage stage(recorder, "attr.predicting");

    std::vector<std::array<double, 3>> recon(n);
    std::array<std::vector<std::int64_t>, 3> residuals;
    for (auto &channel : residuals)
        channel.reserve(n);

    std::uint64_t visited = 0;
    traverseLods(
        sorted_cloud, config.lod_levels, config.num_neighbors,
        recon,
        [&](std::size_t i, const std::array<double, 3> &predicted) {
            const double actual[3] = {
                static_cast<double>(sorted_cloud.r()[i]),
                static_cast<double>(sorted_cloud.g()[i]),
                static_cast<double>(sorted_cloud.b()[i])};
            for (int c = 0; c < 3; ++c) {
                const double residual =
                    actual[c] -
                    predicted[static_cast<std::size_t>(c)];
                const std::int64_t rq =
                    quantize(residual, config.qstep);
                residuals[static_cast<std::size_t>(c)].push_back(
                    rq);
                recon[i][static_cast<std::size_t>(c)] =
                    predicted[static_cast<std::size_t>(c)] +
                    static_cast<double>(rq) * config.qstep;
            }
            ++visited;
        });

    recordKernel(
        recorder,
        KernelWork{.name = "attr.predict_transform",
                   .resource = ExecResource::kCpuSequential,
                   .invocations = 1,
                   .items = visited,
                   .ops = visited *
                          (static_cast<std::uint64_t>(
                               config.num_neighbors) *
                               14 +
                           12),
                   .bytes = visited * 40});

    BitWriter writer;
    writer.writeBits(static_cast<std::uint8_t>(kMagic[0]), 8);
    writer.writeBits(static_cast<std::uint8_t>(kMagic[1]), 8);
    writer.writeBits(static_cast<std::uint8_t>(kMagic[2]), 8);
    writer.writeVarint(static_cast<std::uint64_t>(
        std::llround(config.qstep * 1000)));
    writer.writeVarint(n);
    writer.writeVarint(
        static_cast<std::uint64_t>(config.lod_levels));
    writer.writeVarint(
        static_cast<std::uint64_t>(config.num_neighbors));

    std::uint64_t entropy_in = 0;
    for (int c = 0; c < 3; ++c) {
        BitWriter channel;
        for (const std::int64_t rq :
             residuals[static_cast<std::size_t>(c)]) {
            channel.writeSignedVarint(rq);
        }
        const std::vector<std::uint8_t> raw = channel.take();
        const std::vector<std::uint8_t> packed =
            entropyCompress(raw);
        entropy_in += raw.size();
        writer.writeVarint(raw.size());
        writer.writeVarint(packed.size());
        writer.writeBytes(packed.data(), packed.size());
    }
    recordKernel(recorder,
                 KernelWork{.name = "attr.predict_entropy",
                            .resource = ExecResource::kCpuSequential,
                            .invocations = 3,
                            .items = entropy_in,
                            .ops = entropy_in * 24,
                            .bytes = entropy_in * 2});
    return writer.take();
}

Status
decodePredictingInto(const std::vector<std::uint8_t> &payload,
                     VoxelCloud &cloud, WorkRecorder *recorder)
{
    ScopedTrace trace("attr.pred.decode");
    const std::size_t n = cloud.size();
    if (n == 0)
        return invalidArgument("decodePredictingInto: empty cloud");

    ScopedStage stage(recorder, "attrdec.predicting");

    BitReader reader(payload);
    if (reader.readBits(8) != 'P' || reader.readBits(8) != 'R' ||
        reader.readBits(8) != 'D') {
        return corruptBitstream("predicting payload: bad magic");
    }
    const double qstep =
        static_cast<double>(reader.readVarint()) / 1000.0;
    const std::size_t stored_n =
        static_cast<std::size_t>(reader.readVarint());
    const int lod_levels = static_cast<int>(reader.readVarint());
    const int num_neighbors =
        static_cast<int>(reader.readVarint());
    if (reader.overrun() || qstep <= 0.0 || num_neighbors < 1 ||
        num_neighbors > 4 || lod_levels < 0 || lod_levels > 62) {
        return corruptBitstream("predicting payload: bad header");
    }
    if (stored_n != n)
        return corruptBitstream(
            "predicting payload: point count mismatch");

    std::array<std::vector<std::int64_t>, 3> residuals;
    for (int c = 0; c < 3; ++c) {
        const std::size_t raw_size =
            static_cast<std::size_t>(reader.readVarint());
        const std::size_t packed_size =
            static_cast<std::size_t>(reader.readVarint());
        reader.alignToByte();
        if (reader.overrun() ||
            reader.byteOffset() + packed_size > payload.size())
            return corruptBitstream(
                "predicting payload: truncated");
        std::vector<std::uint8_t> packed(
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            packed_size));
        auto raw = entropyDecompress(packed, raw_size);
        if (!raw)
            return raw.status();
        BitReader channel(*raw);
        auto &list = residuals[static_cast<std::size_t>(c)];
        list.reserve(n);
        for (std::size_t k = 0; k < n; ++k)
            list.push_back(channel.readSignedVarint());
        if (channel.overrun())
            return corruptBitstream(
                "predicting payload: residual stream truncated");
        for (std::size_t k = 0; k < packed_size; ++k)
            reader.readBits(8);
    }

    std::vector<std::array<double, 3>> recon(n);
    std::size_t cursor = 0;
    bool underflow = false;
    traverseLods(
        cloud, lod_levels, num_neighbors, recon,
        [&](std::size_t i, const std::array<double, 3> &predicted) {
            if (cursor >= n) {
                underflow = true;
                return;
            }
            for (int c = 0; c < 3; ++c) {
                recon[i][static_cast<std::size_t>(c)] =
                    predicted[static_cast<std::size_t>(c)] +
                    static_cast<double>(
                        residuals[static_cast<std::size_t>(c)]
                                 [cursor]) *
                        qstep;
            }
            ++cursor;
        });
    if (underflow || cursor != n)
        return corruptBitstream(
            "predicting payload: traversal mismatch");

    for (std::size_t i = 0; i < n; ++i) {
        cloud.mutableR()[i] = static_cast<std::uint8_t>(
            std::clamp(std::lround(recon[i][0]), 0l, 255l));
        cloud.mutableG()[i] = static_cast<std::uint8_t>(
            std::clamp(std::lround(recon[i][1]), 0l, 255l));
        cloud.mutableB()[i] = static_cast<std::uint8_t>(
            std::clamp(std::lround(recon[i][2]), 0l, 255l));
    }
    recordKernel(recorder,
                 KernelWork{.name = "attrdec.predict_inverse",
                            .resource = ExecResource::kCpuSequential,
                            .invocations = 1,
                            .items = n,
                            .ops = n * (static_cast<std::uint64_t>(
                                            num_neighbors) *
                                            14 +
                                        12),
                            .bytes = n * 40});
    return Status::ok();
}

}  // namespace edgepcc
