#include "edgepcc/platform/arena.h"

#include <new>
#include <utility>

namespace edgepcc {

namespace {

thread_local FrameArena *t_current_arena = nullptr;

std::size_t
alignUp(std::size_t value, std::size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

}  // namespace

FrameArena::FrameArena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes
                                    : block_bytes)
{
}

FrameArena::~FrameArena()
{
    release();
}

FrameArena::FrameArena(FrameArena &&other) noexcept
    : blocks_(std::move(other.blocks_)),
      block_bytes_(other.block_bytes_),
      active_(other.active_),
      cursor_(other.cursor_),
      bytes_used_(other.bytes_used_),
      bytes_reserved_(other.bytes_reserved_)
{
    other.blocks_.clear();
    other.active_ = 0;
    other.cursor_ = 0;
    other.bytes_used_ = 0;
    other.bytes_reserved_ = 0;
}

FrameArena &
FrameArena::operator=(FrameArena &&other) noexcept
{
    if (this != &other) {
        release();
        blocks_ = std::move(other.blocks_);
        block_bytes_ = other.block_bytes_;
        active_ = other.active_;
        cursor_ = other.cursor_;
        bytes_used_ = other.bytes_used_;
        bytes_reserved_ = other.bytes_reserved_;
        other.blocks_.clear();
        other.active_ = 0;
        other.cursor_ = 0;
        other.bytes_used_ = 0;
        other.bytes_reserved_ = 0;
    }
    return *this;
}

FrameArena::Block &
FrameArena::growFor(std::size_t bytes)
{
    std::size_t size = block_bytes_;
    while (size < bytes)
        size *= 2;
    // Reserve the slot first so the push_back below cannot throw
    // after the block allocation succeeded (which would leak it).
    blocks_.reserve(blocks_.size() + 1);
    Block block;
    // Upstream allocation goes through ::operator new on purpose:
    // the countdown-exhaustion tests replace it and expect arena
    // growth to fail the same way every other allocation does.
    block.data = static_cast<std::uint8_t *>(::operator new(size));
    block.size = size;
    bytes_reserved_ += size;
    blocks_.push_back(block);
    return blocks_.back();
}

void *
FrameArena::allocate(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    // Block bases come from ::operator new, i.e. max_align-aligned;
    // clamping requests up keeps every offset max_align-aligned too,
    // so over-aligned types are the only unsupported case.
    if (align < alignof(std::max_align_t))
        align = alignof(std::max_align_t);
    while (active_ < blocks_.size()) {
        Block &block = blocks_[active_];
        const std::size_t aligned = alignUp(cursor_, align);
        if (aligned + bytes <= block.size) {
            cursor_ = aligned + bytes;
            bytes_used_ += bytes;
            return block.data + aligned;
        }
        // Bump allocation never backtracks: the tail of this block
        // is abandoned until the next reset().
        ++active_;
        cursor_ = 0;
    }
    Block &block = growFor(bytes);
    active_ = blocks_.size() - 1;
    cursor_ = bytes;
    bytes_used_ += bytes;
    return block.data;
}

void
FrameArena::reset()
{
    active_ = 0;
    cursor_ = 0;
    bytes_used_ = 0;
}

void
FrameArena::release()
{
    for (Block &block : blocks_)
        ::operator delete(block.data);
    blocks_.clear();
    reset();
    bytes_reserved_ = 0;
}

FrameArena *
currentFrameArena()
{
    return t_current_arena;
}

ScopedFrameArena::ScopedFrameArena(FrameArena *arena)
    : previous_(t_current_arena)
{
    t_current_arena = arena;
}

ScopedFrameArena::~ScopedFrameArena()
{
    t_current_arena = previous_;
}

}  // namespace edgepcc
