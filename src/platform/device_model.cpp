#include "edgepcc/platform/device_model.h"

#include <algorithm>

namespace edgepcc {

DeviceSpec
DeviceSpec::jetsonXavier15W()
{
    DeviceSpec spec;
    spec.name = "Jetson AGX Xavier (15W)";
    return spec;
}

DeviceSpec
DeviceSpec::jetsonXavier10W()
{
    DeviceSpec spec;
    spec.name = "Jetson AGX Xavier (10W)";
    // Paper Sec. VI-C: total latency in 10 W mode is 1.29x the
    // 15 W latency for the Loot video.
    spec.throughput_scale = 1.0 / 1.29;
    // Lower clocks also pull the rails down slightly.
    spec.cpu_seq_active_w = 1.35;
    spec.cpu_par_active_w = 2.9;
    spec.gpu_active_w = 1.9;
    return spec;
}

double
DeviceSpec::activeRailW(ExecResource resource) const
{
    switch (resource) {
      case ExecResource::kCpuSequential: return cpu_seq_active_w;
      case ExecResource::kCpuParallel: return cpu_par_active_w;
      case ExecResource::kGpu: return gpu_active_w;
    }
    return cpu_seq_active_w;
}

KernelCostTable::Cost
KernelCostTable::costFor(const std::string &kernel_name,
                         ExecResource resource) const
{
    const auto it = by_name_.find(kernel_name);
    if (it != by_name_.end())
        return it->second;
    return defaults_[static_cast<int>(resource)];
}

void
KernelCostTable::set(const std::string &kernel_name, Cost cost)
{
    by_name_[kernel_name] = cost;
}

KernelTiming
EdgeDeviceModel::evaluateKernel(const KernelWork &work) const
{
    const KernelCostTable::Cost cost =
        table_->costFor(work.name, work.resource);

    double throughput = cost.ops_per_second * spec_.throughput_scale;
    if (work.resource == ExecResource::kCpuParallel) {
        // Table values are per-thread for CPU-parallel kernels.
        throughput *= static_cast<double>(
            std::max(1, spec_.cpu_parallel_threads));
    }

    KernelTiming timing;
    timing.name = work.name;
    timing.resource = work.resource;
    timing.seconds =
        static_cast<double>(work.ops) / std::max(throughput, 1.0);
    if (work.resource == ExecResource::kGpu) {
        timing.seconds += static_cast<double>(work.invocations) *
                          spec_.gpu_launch_overhead_s /
                          spec_.throughput_scale;
    }
    timing.joules =
        timing.seconds *
            (spec_.board_idle_w + spec_.activeRailW(work.resource)) +
        static_cast<double>(work.ops) * cost.joules_per_op;
    return timing;
}

StageTiming
EdgeDeviceModel::evaluateStage(const StageProfile &stage) const
{
    StageTiming timing;
    timing.name = stage.name;
    timing.host_seconds = stage.host_seconds;
    for (const KernelWork &work : stage.kernels) {
        KernelTiming kernel = evaluateKernel(work);
        timing.model_seconds += kernel.seconds;
        timing.joules += kernel.joules;
        timing.kernels.push_back(std::move(kernel));
    }
    return timing;
}

PipelineTiming
EdgeDeviceModel::evaluate(const PipelineProfile &profile) const
{
    PipelineTiming timing;
    timing.stages.reserve(profile.stages.size());
    for (const StageProfile &stage : profile.stages)
        timing.stages.push_back(evaluateStage(stage));
    return timing;
}

double
PipelineTiming::modelSeconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.model_seconds;
    return total;
}

double
PipelineTiming::hostSeconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.host_seconds;
    return total;
}

double
PipelineTiming::joules() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.joules;
    return total;
}

double
PipelineTiming::modelSecondsWithPrefix(
    const std::string &prefix) const
{
    double total = 0.0;
    for (const auto &stage : stages) {
        if (stage.name.rfind(prefix, 0) == 0)
            total += stage.model_seconds;
    }
    return total;
}

double
PipelineTiming::joulesWithPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (const auto &stage : stages) {
        if (stage.name.rfind(prefix, 0) == 0)
            total += stage.joules;
    }
    return total;
}

}  // namespace edgepcc
