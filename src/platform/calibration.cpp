/**
 * @file
 * Paper-anchored calibration of the edge-device model.
 *
 * Each entry gives the *effective* throughput (ops/s) of one kernel
 * on the 15 W Jetson AGX Xavier, plus its dynamic energy per op.
 * "Effective" folds real-hardware effects the functional host run
 * cannot observe (memory stalls, divergence, allocator pressure,
 * small-kernel underutilization), which is why some values look far
 * from peak FLOPS. Every value is anchored to a latency the paper
 * reports; anchors are quoted per group below. Work counts are
 * evaluated at the paper's Redandblack scale (N = 727k, depth 10).
 *
 * Anchors (paper Figs. 2 and 8a, Secs. IV-B/IV-C/V-A):
 *   TMC13 geometry (seq. octree build + serialize + entropy) 1552 ms
 *   TMC13 attributes (RAHT + quantize + entropy)             2600 ms
 *   Proposed geometry (morton gen 0.5 ms, total)               42 ms
 *   Proposed intra attributes                                  53 ms
 *   Proposed inter attributes (V1)                             83 ms
 *   CWIPC P-frame (MB tree search + ICP on 4 threads)        ~5.9 s
 *   Decode (geometry + attributes)                            ~70 ms
 *
 * Energy rails come straight from the paper (Sec. VI-C): TMC13 CPU
 * 1687 mW, CWIPC CPU 3622 mW, proposed CPU 1310 mW + GPU 1065 mW;
 * the per-op dynamic energies are fitted so Fig. 8b totals and the
 * Fig. 9 breakdown (Diff_Squared 35%, Squared_Sum 16%, address
 * generation 32%) are reproduced.
 */

#include "edgepcc/platform/device_model.h"

namespace edgepcc {

namespace {

KernelCostTable
buildCalibratedTable()
{
    using Cost = KernelCostTable::Cost;
    KernelCostTable table;

    // Fallbacks for kernels without a dedicated anchor.
    table.setDefault(ExecResource::kGpu, Cost{1.0e9, 5.0e-11});
    table.setDefault(ExecResource::kCpuSequential,
                     Cost{5.0e7, 2.0e-11});
    table.setDefault(ExecResource::kCpuParallel,
                     Cost{8.0e7, 2.0e-11});

    // ---- Proposed geometry pipeline: 42 ms total at N=727k -------
    // Morton generation is the paper's quoted 0.5 ms.
    table.set("morton.generate", Cost{2.6e10, 5.0e-11});
    table.set("morton.sort", Cost{8.5e8, 5.0e-11});
    table.set("morton.gather", Cost{2.2e9, 5.0e-11});
    table.set("geom.bbox_reduce", Cost{2.2e9, 5.0e-11});
    table.set("geom.requant", Cost{3.3e9, 5.0e-11});
    table.set("geom.dedup", Cost{1.1e9, 5.0e-11});
    table.set("octree.par_levels", Cost{1.6e9, 5.0e-11});
    table.set("octree.par_parents", Cost{2.5e9, 5.0e-11});
    table.set("octree.occupancy_merge", Cost{1.45e9, 5.0e-11});

    // ---- Baseline geometry: 1552 ms at N=727k --------------------
    // Point-by-point insertion walks ~N*depth nodes with pointer
    // chasing and allocation (~310 effective cycles per step).
    table.set("octree.seq_insert", Cost{7.3e6, 3.0e-10});
    table.set("octree.seq_serialize", Cost{1.8e7, 2.0e-10});
    table.set("geom.entropy", Cost{1.2e8, 5.0e-11});

    // ---- Baseline attributes: 2600 ms at N=727k ------------------
    table.set("attr.raht_transform", Cost{2.5e7, 1.5e-10});
    table.set("attr.raht_entropy", Cost{1.0e8, 5.0e-11});
    // CWIPC's raw attribute entropy pass.
    table.set("attr.raw_entropy", Cost{1.0e8, 5.0e-11});

    // ---- Proposed intra attributes: 53 ms at N=727k --------------
    table.set("attr.seg_minmax", Cost{2.8e8, 5.0e-11});
    table.set("attr.seg_residual", Cost{6.2e8, 5.0e-11});
    table.set("attr.seg_addressgen", Cost{9.0e7, 2.0e-9});
    table.set("attr.seg_pack", Cost{4.1e8, 5.0e-11});

    // ---- Proposed inter attributes: 83 ms (V1) at N=727k ---------
    // Eq.-2 kernels dominate (Fig. 9: 51% of energy together).
    table.set("bm.diff_squared", Cost{1.6e10, 5.0e-11});
    table.set("bm.squared_sum", Cost{9.0e9, 7.0e-10});
    table.set("bm.argmin", Cost{4.5e9, 5.0e-11});
    // Scattered delta stores hit DRAM per element (Fig. 9: 32%).
    table.set("bm.address_gen", Cost{2.6e8, 6.0e-8});
    table.set("bm.reuse_copy", Cost{1.0e9, 5.0e-11});

    // ---- CWIPC macro-block pipeline: ~5.9 s P frames -------------
    // Values are per-thread; CWIPC runs 4 threads (paper Sec. VI-B).
    table.set("mb.tree_build", Cost{8.0e7, 2.0e-11});
    table.set("mb.tree_search", Cost{6.0e7, 2.0e-11});
    table.set("mb.icp", Cost{5.2e8, 2.0e-11});
    table.set("mb.attr_entropy", Cost{1.0e8, 5.0e-11});

    // ---- Decoders: ~70 ms/frame total -----------------------------
    table.set("geomdec.parse", Cost{1.2e8, 2.0e-11});
    table.set("geomdec.expand", Cost{6.5e8, 5.0e-11});
    table.set("geomdec.dequant", Cost{1.7e9, 5.0e-11});
    table.set("attrdec.seg_unpack", Cost{3.5e8, 5.0e-11});
    table.set("attrdec.raht_inverse", Cost{3.5e7, 1.5e-10});
    table.set("interdec.reconstruct", Cost{5.8e8, 5.0e-11});

    return table;
}

}  // namespace

const KernelCostTable &
KernelCostTable::calibrated()
{
    static const KernelCostTable table = buildCalibratedTable();
    return table;
}

}  // namespace edgepcc
