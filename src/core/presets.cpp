#include "edgepcc/core/codec_config.h"

namespace edgepcc {

CodecConfig
makeTmc13LikeConfig()
{
    CodecConfig config;
    config.name = "TMC13";
    config.geometry.builder = GeometryConfig::Builder::kSequential;
    config.geometry.entropy_coding = true;
    // TMC13 codes occupancy under neighbourhood contexts.
    config.geometry.contextual_entropy = true;
    config.geometry.tight_bbox = false;  // lossless geometry
    config.attr_mode = AttrMode::kRaht;
    config.inter_mode = InterMode::kNone;
    config.raht.qstep = 1.6;  // ~55 dB attribute PSNR
    return config;
}

CodecConfig
makeCwipcLikeConfig()
{
    CodecConfig config;
    config.name = "CWIPC";
    config.geometry.builder = GeometryConfig::Builder::kSequential;
    config.geometry.entropy_coding = true;
    config.geometry.tight_bbox = false;
    config.attr_mode = AttrMode::kRawEntropy;
    config.inter_mode = InterMode::kMacroBlock;
    config.gop_size = 3;  // IPP
    return config;
}

CodecConfig
makeIntraOnlyConfig()
{
    CodecConfig config;
    config.name = "Intra-Only";
    config.geometry.builder =
        GeometryConfig::Builder::kParallelMorton;
    // Entropy coding discarded for speed (paper Sec. IV-B3).
    config.geometry.entropy_coding = false;
    config.geometry.tight_bbox = true;
    config.attr_mode = AttrMode::kSegment;
    config.inter_mode = InterMode::kNone;
    config.segment.num_segments = 0;  // auto (~30000 at 8iVFB size)
    config.segment.quant_step = 3;    // ~48.5 dB attribute PSNR
    config.segment.two_layer = true;
    return config;
}

CodecConfig
makeIntraInterV1Config()
{
    CodecConfig config = makeIntraOnlyConfig();
    config.name = "Intra-Inter-V1";
    config.inter_mode = InterMode::kBlockMatch;
    config.gop_size = 3;
    config.block_match.num_blocks = 0;  // auto (~50000 at 8iVFB)
    config.block_match.candidate_window = 100;
    // Paper threshold 300 over ~20-point blocks -> 15 per point.
    config.block_match.reuse_threshold = 15.0;
    config.block_match.delta_codec = config.segment;
    return config;
}

CodecConfig
makeIntraInterV2Config()
{
    CodecConfig config = makeIntraInterV1Config();
    config.name = "Intra-Inter-V2";
    // Paper threshold 1200 over ~20-point blocks -> 60 per point.
    config.block_match.reuse_threshold = 60.0;
    return config;
}

std::vector<CodecConfig>
allPaperConfigs()
{
    return {makeTmc13LikeConfig(), makeCwipcLikeConfig(),
            makeIntraOnlyConfig(), makeIntraInterV1Config(),
            makeIntraInterV2Config()};
}

}  // namespace edgepcc
