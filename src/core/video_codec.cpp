#include "edgepcc/core/video_codec.h"

#include <algorithm>
#include <new>

#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"

namespace edgepcc {

namespace {

/** Attribute payload kinds in the frame container. */
enum class AttrKind : std::uint8_t {
    kRaht = 0,
    kSegment = 1,
    kRawEntropy = 2,
    kInterBlockMatch = 3,
    kInterMacroBlock = 4,
    kPredicting = 5,
};

constexpr std::uint8_t kContainerVersion = 1;

/** Converts a cloud's colors to int32 channels for the segment
 *  codec. */
AttrChannels
colorsToChannels(const VoxelCloud &cloud)
{
    AttrChannels channels;
    const std::size_t n = cloud.size();
    for (auto &channel : channels)
        channel.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        channels[0][i] = cloud.r()[i];
        channels[1][i] = cloud.g()[i];
        channels[2][i] = cloud.b()[i];
    }
    return channels;
}

/** Writes decoded channels back into a cloud, clamped to 8 bits. */
Status
channelsToColors(const AttrChannels &channels, VoxelCloud &cloud)
{
    const std::size_t n = cloud.size();
    if (channels[0].size() != n)
        return corruptBitstream(
            "attribute stream size does not match geometry");
    for (std::size_t i = 0; i < n; ++i) {
        cloud.mutableR()[i] = static_cast<std::uint8_t>(
            std::clamp(channels[0][i], 0, 255));
        cloud.mutableG()[i] = static_cast<std::uint8_t>(
            std::clamp(channels[1][i], 0, 255));
        cloud.mutableB()[i] = static_cast<std::uint8_t>(
            std::clamp(channels[2][i], 0, 255));
    }
    return Status::ok();
}

std::vector<std::uint8_t>
assembleContainer(Frame::Type type, AttrKind attr_kind,
                  int grid_bits,
                  const std::vector<std::uint8_t> &geometry,
                  const std::vector<std::uint8_t> &attr)
{
    BitWriter writer;
    writer.writeBits('E', 8);
    writer.writeBits('P', 8);
    writer.writeBits('C', 8);
    writer.writeBits(kContainerVersion, 8);
    writer.writeBits(
        type == Frame::Type::kPredicted ? 1u : 0u, 8);
    writer.writeBits(static_cast<std::uint8_t>(attr_kind), 8);
    writer.writeBits(static_cast<std::uint64_t>(grid_bits), 8);
    writer.writeVarint(geometry.size());
    writer.writeBytes(geometry.data(), geometry.size());
    writer.writeVarint(attr.size());
    writer.writeBytes(attr.data(), attr.size());
    return writer.take();
}

struct ParsedContainer {
    Frame::Type type = Frame::Type::kIntra;
    AttrKind attr_kind = AttrKind::kSegment;
    int grid_bits = 10;
    std::vector<std::uint8_t> geometry;
    std::vector<std::uint8_t> attr;
};

Expected<ParsedContainer>
parseContainer(const std::vector<std::uint8_t> &bitstream)
{
    BitReader reader(bitstream);
    if (reader.readBits(8) != 'E' || reader.readBits(8) != 'P' ||
        reader.readBits(8) != 'C') {
        return corruptBitstream("frame container: bad magic");
    }
    if (reader.readBits(8) != kContainerVersion)
        return corruptBitstream(
            "frame container: unsupported version");
    ParsedContainer parsed;
    parsed.type = reader.readBits(8) == 1
                      ? Frame::Type::kPredicted
                      : Frame::Type::kIntra;
    const std::uint64_t kind = reader.readBits(8);
    if (kind > 5)
        return corruptBitstream(
            "frame container: unknown attribute kind");
    parsed.attr_kind = static_cast<AttrKind>(kind);
    parsed.grid_bits = static_cast<int>(reader.readBits(8));

    const auto read_block =
        [&](std::vector<std::uint8_t> &out) -> Status {
        const std::size_t size =
            static_cast<std::size_t>(reader.readVarint());
        reader.alignToByte();
        if (reader.overrun() ||
            reader.byteOffset() + size > bitstream.size())
            return corruptBitstream(
                "frame container: truncated block");
        out.assign(
            bitstream.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            bitstream.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            size));
        for (std::size_t k = 0; k < size; ++k)
            reader.readBits(8);
        return Status::ok();
    };
    EDGEPCC_RETURN_IF_ERROR(read_block(parsed.geometry));
    EDGEPCC_RETURN_IF_ERROR(read_block(parsed.attr));
    return parsed;
}

/** Decodes an intra attribute payload into `cloud`. */
Status
decodeIntraAttrInto(AttrKind kind,
                    const std::vector<std::uint8_t> &payload,
                    VoxelCloud &cloud, WorkRecorder *recorder)
{
    switch (kind) {
      case AttrKind::kRaht:
        return decodeRahtInto(payload, cloud, recorder);
      case AttrKind::kSegment: {
          auto channels = decodeSegmentAttr(payload, recorder);
          if (!channels)
              return channels.status();
          return channelsToColors(*channels, cloud);
      }
      case AttrKind::kRawEntropy:
        return decodeRawEntropyAttrInto(payload, cloud, recorder);
      case AttrKind::kPredicting:
        return decodePredictingInto(payload, cloud, recorder);
      default:
        return corruptBitstream(
            "intra frame with inter attribute payload");
    }
}

}  // namespace

VideoEncoder::VideoEncoder(CodecConfig config)
    : config_(std::move(config))
{
}

void
VideoEncoder::reset()
{
    frame_counter_ = 0;
    has_reference_ = false;
}

void
VideoEncoder::forceKeyframe()
{
    // Restart the GOP phase; dropping the reference guarantees the
    // next frame cannot be predicted even mid-GOP.
    frame_counter_ = 0;
    has_reference_ = false;
}

void
VideoEncoder::setGopSize(int gop_size)
{
    config_.gop_size = gop_size < 1 ? 1 : gop_size;
}

void
VideoEncoder::updateCoding(const CodecConfig &config)
{
    config_ = config;
    if (config_.gop_size < 1)
        config_.gop_size = 1;
}

VideoEncoder::StateSnapshot
VideoEncoder::snapshotState() const
{
    StateSnapshot state;
    state.config = config_;
    state.frame_counter = frame_counter_;
    state.reference = reference_;
    state.has_reference = has_reference_;
    return state;
}

void
VideoEncoder::restoreState(const StateSnapshot &state)
{
    config_ = state.config;
    frame_counter_ = state.frame_counter;
    reference_ = state.reference;
    has_reference_ = state.has_reference;
}

Expected<EncodedFrame>
VideoEncoder::encode(const VoxelCloud &cloud)
{
    // Encoding a frame allocates freely (octree levels, attribute
    // buffers); under memory pressure that must surface as a
    // Status, never an exception escaping the public API. Arena
    // growth goes through ::operator new, so it fails (and is
    // caught) the same way — inside the try on purpose.
    try {
        arena_.reset();
        ScopedFrameArena bind(&arena_);
        return encodeImpl(cloud);
    } catch (const std::bad_alloc &) {
        return resourceExhausted(
            "VideoEncoder::encode: allocation failed");
    }
}

Expected<EncodedFrame>
VideoEncoder::encodeImpl(const VoxelCloud &cloud)
{
    if (cloud.empty())
        return invalidArgument("VideoEncoder::encode: empty cloud");
    if (config_.gop_size < 1)
        return invalidArgument(
            "VideoEncoder::encode: gop_size must be >= 1");
    if (config_.inter_mode == InterMode::kMacroBlock &&
        config_.geometry.builder ==
            GeometryConfig::Builder::kParallelMorton &&
        config_.geometry.tight_bbox) {
        return invalidArgument(
            "macro-block inter coding requires lossless geometry "
            "(disable tight_bbox or use the sequential builder)");
    }

    ScopedTrace frame_trace("encode.frame");
    WorkRecorder recorder;
    EncodedFrame out;

    const bool want_p =
        config_.inter_mode != InterMode::kNone && has_reference_ &&
        (frame_counter_ %
             static_cast<std::uint32_t>(config_.gop_size) !=
         0);

    Expected<GeometryEncoded> geometry = [&] {
        ScopedTrace trace("encode.geometry");
        return encodeGeometry(cloud, config_.geometry, &recorder);
    }();
    if (!geometry)
        return geometry.status();

    std::vector<std::uint8_t> attr_payload;
    AttrKind attr_kind = AttrKind::kSegment;
    const VoxelCloud &sorted = geometry->sorted_cloud;

    ScopedTrace attr_trace(want_p ? "encode.attr.inter"
                                  : "encode.attr.intra");
    if (want_p) {
        if (config_.inter_mode == InterMode::kBlockMatch) {
            auto inter = encodeInterAttr(
                sorted, reference_, config_.block_match, &recorder);
            if (!inter)
                return inter.status();
            attr_payload = std::move(inter->payload);
            attr_kind = AttrKind::kInterBlockMatch;
            out.stats.block_match = inter->stats;
        } else {
            auto inter = encodeMacroBlockAttr(
                sorted, reference_, config_.macro_block, &recorder);
            if (!inter)
                return inter.status();
            attr_payload = std::move(inter->payload);
            attr_kind = AttrKind::kInterMacroBlock;
            out.stats.macro_block = inter->stats;
        }
    } else {
        switch (config_.attr_mode) {
          case AttrMode::kRaht: {
              auto raht =
                  encodeRaht(sorted, config_.raht, &recorder);
              if (!raht)
                  return raht.status();
              attr_payload = raht.takeValue();
              attr_kind = AttrKind::kRaht;
              break;
          }
          case AttrMode::kSegment: {
              auto seg = encodeSegmentAttr(colorsToChannels(sorted),
                                           config_.segment,
                                           &recorder);
              if (!seg)
                  return seg.status();
              attr_payload = seg.takeValue();
              attr_kind = AttrKind::kSegment;
              break;
          }
          case AttrMode::kRawEntropy:
            attr_payload = encodeRawEntropyAttr(sorted, &recorder);
            attr_kind = AttrKind::kRawEntropy;
            break;
          case AttrMode::kPredicting: {
              auto predicted = encodePredicting(
                  sorted, config_.predicting, &recorder);
              if (!predicted)
                  return predicted.status();
              attr_payload = predicted.takeValue();
              attr_kind = AttrKind::kPredicting;
              break;
          }
        }
    }
    attr_trace.stop();

    const Frame::Type type = want_p ? Frame::Type::kPredicted
                                    : Frame::Type::kIntra;
    {
        ScopedTrace trace("encode.container");
        out.bitstream =
            assembleContainer(type, attr_kind, cloud.gridBits(),
                              geometry->payload, attr_payload);
    }

    out.stats.type = type;
    out.stats.num_input_points = cloud.size();
    out.stats.num_voxels = geometry->num_voxels;
    out.stats.raw_bytes = cloud.rawBytes();
    out.stats.geometry_bytes = geometry->payload.size();
    out.stats.attr_bytes = attr_payload.size();
    out.stats.total_bytes = out.bitstream.size();
    out.profile = recorder.takeProfile();

    // Keep the reconstructed I frame as the prediction reference.
    if (!want_p && config_.inter_mode != InterMode::kNone) {
        ScopedTrace trace("encode.reference");
        reference_ = sorted;
        const Status status = decodeIntraAttrInto(
            attr_kind, attr_payload, reference_, nullptr);
        if (!status.isOk())
            return status;
        has_reference_ = true;
    }

    ++frame_counter_;
    return out;
}

void
VideoDecoder::reset()
{
    has_reference_ = false;
}

Expected<DecodedFrame>
VideoDecoder::decode(const std::vector<std::uint8_t> &bitstream)
{
    try {
        arena_.reset();
        ScopedFrameArena bind(&arena_);
        return decodeImpl(bitstream);
    } catch (const std::bad_alloc &) {
        return resourceExhausted(
            "VideoDecoder::decode: allocation failed");
    }
}

Expected<DecodedFrame>
VideoDecoder::decodeImpl(const std::vector<std::uint8_t> &bitstream)
{
    ScopedTrace frame_trace("decode.frame");
    auto parsed = parseContainer(bitstream);
    if (!parsed)
        return parsed.status();

    WorkRecorder recorder;
    DecodedFrame out;
    out.type = parsed->type;

    Expected<VoxelCloud> cloud = [&] {
        ScopedTrace trace("decode.geometry");
        return decodeGeometry(parsed->geometry, &recorder);
    }();
    if (!cloud)
        return cloud.status();
    out.cloud = cloud.takeValue();

    ScopedTrace attr_trace("decode.attr");
    switch (parsed->attr_kind) {
      case AttrKind::kInterBlockMatch: {
          if (!has_reference_)
              return corruptBitstream(
                  "predicted frame before any intra frame");
          const Status status = decodeInterAttrInto(
              parsed->attr, reference_, out.cloud, &recorder);
          if (!status.isOk())
              return status;
          break;
      }
      case AttrKind::kInterMacroBlock: {
          if (!has_reference_)
              return corruptBitstream(
                  "predicted frame before any intra frame");
          const Status status = decodeMacroBlockAttrInto(
              parsed->attr, reference_, out.cloud, &recorder);
          if (!status.isOk())
              return status;
          break;
      }
      default: {
          const Status status =
              decodeIntraAttrInto(parsed->attr_kind, parsed->attr,
                                  out.cloud, &recorder);
          if (!status.isOk())
              return status;
          reference_ = out.cloud;
          has_reference_ = true;
          break;
      }
    }
    attr_trace.stop();

    out.profile = recorder.takeProfile();
    return out;
}

Expected<DecodedFrame>
VideoDecoder::decodePromoted(
    const std::vector<std::uint8_t> &bitstream,
    const VoxelCloud *conceal_source, bool *attr_concealed)
{
    try {
        arena_.reset();
        ScopedFrameArena bind(&arena_);
        return decodePromotedImpl(bitstream, conceal_source,
                                  attr_concealed);
    } catch (const std::bad_alloc &) {
        return resourceExhausted(
            "VideoDecoder::decodePromoted: allocation failed");
    }
}

Expected<DecodedFrame>
VideoDecoder::decodePromotedImpl(
    const std::vector<std::uint8_t> &bitstream,
    const VoxelCloud *conceal_source, bool *attr_concealed)
{
    ScopedTrace frame_trace("decode.frame.promoted");
    if (attr_concealed != nullptr)
        *attr_concealed = false;
    auto parsed = parseContainer(bitstream);
    if (!parsed)
        return parsed.status();

    const bool inter_attr =
        parsed->attr_kind == AttrKind::kInterBlockMatch ||
        parsed->attr_kind == AttrKind::kInterMacroBlock;
    if (!inter_attr) {
        // Intra payloads need no promotion; the normal path also
        // refreshes the prediction reference.
        return decode(bitstream);
    }

    WorkRecorder recorder;
    DecodedFrame out;
    out.type = parsed->type;

    Expected<VoxelCloud> cloud = [&] {
        ScopedTrace trace("decode.geometry");
        return decodeGeometry(parsed->geometry, &recorder);
    }();
    if (!cloud)
        return cloud.status();
    out.cloud = cloud.takeValue();

    {
        ScopedTrace trace("decode.attr.conceal");
        static const VoxelCloud kEmpty{10};
        concealAttrFromReference(
            conceal_source != nullptr ? *conceal_source : kEmpty,
            out.cloud);
    }
    if (attr_concealed != nullptr)
        *attr_concealed = true;
    out.profile = recorder.takeProfile();
    return out;
}

}  // namespace edgepcc
