#include "edgepcc/entropy/bitstream.h"

#include <bit>
#include <cassert>

namespace edgepcc {

void
BitWriter::writeBits(std::uint64_t value, int count)
{
    assert(count >= 0 && count <= 64);
    if (count < 64)
        value &= (std::uint64_t{1} << count) - 1;
    while (count > 0) {
        if (fill_ == 8) {
            bytes_.push_back(0);
            fill_ = 0;
        }
        const int space = 8 - fill_;
        const int take = count < space ? count : space;
        bytes_.back() |= static_cast<std::uint8_t>(
            (value & ((std::uint64_t{1} << take) - 1)) << fill_);
        value >>= take;
        fill_ += take;
        count -= take;
    }
}

void
BitWriter::alignToByte()
{
    fill_ = 8;
}

void
BitWriter::writeBytes(const std::uint8_t *data, std::size_t size)
{
    alignToByte();
    bytes_.insert(bytes_.end(), data, data + size);
}

void
BitWriter::writeVarint(std::uint64_t value)
{
    while (value >= 0x80) {
        writeBits((value & 0x7f) | 0x80, 8);
        value >>= 7;
    }
    writeBits(value, 8);
}

void
BitWriter::writeSignedVarint(std::int64_t value)
{
    writeVarint(zigzagEncode(value));
}

std::vector<std::uint8_t>
BitWriter::take()
{
    alignToByte();
    return std::move(bytes_);
}

std::uint64_t
BitReader::readBits(int count)
{
    assert(count >= 0 && count <= 64);
    std::uint64_t value = 0;
    int produced = 0;
    while (produced < count) {
        if (byte_ >= size_) {
            overrun_ = true;
            return value;
        }
        const int avail = 8 - bit_;
        const int take = (count - produced) < avail
                             ? (count - produced)
                             : avail;
        const std::uint64_t chunk =
            (static_cast<std::uint64_t>(data_[byte_]) >> bit_) &
            ((std::uint64_t{1} << take) - 1);
        value |= chunk << produced;
        produced += take;
        bit_ += take;
        if (bit_ == 8) {
            bit_ = 0;
            ++byte_;
        }
    }
    return value;
}

void
BitReader::alignToByte()
{
    if (bit_ != 0) {
        bit_ = 0;
        ++byte_;
    }
}

std::uint64_t
BitReader::readVarint()
{
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
        const std::uint64_t byte = readBits(8);
        if (overrun_)
            return value;
        value |= (byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        if (shift >= 64) {
            overrun_ = true;
            return value;
        }
    }
}

std::int64_t
BitReader::readSignedVarint()
{
    return zigzagDecode(readVarint());
}

int
bitWidth(std::uint64_t value)
{
    return value == 0 ? 0 : 64 - std::countl_zero(value);
}

}  // namespace edgepcc
