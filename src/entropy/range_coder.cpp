#include "edgepcc/entropy/range_coder.h"

#include <algorithm>
#include <cassert>

#include "edgepcc/common/check.h"

namespace edgepcc {

namespace {
constexpr std::uint32_t kTopValue = 1u << 24;
constexpr int kBitModelTotalBits = 11;
constexpr std::uint32_t kBitModelTotal = 1u << kBitModelTotalBits;
constexpr int kBitMoveBits = 5;
}  // namespace

// ---------------------------------------------------------------------
// RangeEncoder
// ---------------------------------------------------------------------

void
RangeEncoder::shiftLow()
{
    if (static_cast<std::uint32_t>(low_) < 0xff000000u ||
        (low_ >> 32) != 0) {
        std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
        std::uint8_t byte = cache_;
        do {
            out_->push_back(
                static_cast<std::uint8_t>(byte + carry));
            byte = 0xff;
        } while (--cache_size_ != 0);
        cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00ffffffULL) << 8;
}

void
RangeEncoder::encodeSpan(std::uint32_t cum, std::uint32_t freq,
                         std::uint32_t total)
{
    assert(freq > 0 && cum + freq <= total && total <= kMaxTotal);
    range_ /= total;
    low_ += static_cast<std::uint64_t>(cum) * range_;
    range_ *= freq;
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
}

void
RangeEncoder::encodeBit(std::uint16_t &prob, int bit)
{
    const std::uint32_t bound =
        (range_ >> kBitModelTotalBits) * prob;
    if (bit == 0) {
        range_ = bound;
        prob = static_cast<std::uint16_t>(
            prob + ((kBitModelTotal - prob) >> kBitMoveBits));
    } else {
        low_ += bound;
        range_ -= bound;
        prob = static_cast<std::uint16_t>(prob -
                                          (prob >> kBitMoveBits));
    }
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
}

void
RangeEncoder::finish()
{
    for (int i = 0; i < 5; ++i)
        shiftLow();
}

// ---------------------------------------------------------------------
// RangeDecoder
// ---------------------------------------------------------------------

RangeDecoder::RangeDecoder(const std::uint8_t *data, std::size_t size)
    : data_(data), size_(size)
{
    // The first emitted byte is the encoder's initial zero cache;
    // reading 5 bytes into a 32-bit code shifts it out.
    for (int i = 0; i < 5; ++i)
        code_ = (code_ << 8) | nextByte();
}

std::uint8_t
RangeDecoder::nextByte()
{
    if (pos_ >= size_) {
        overrun_ = true;
        return 0;
    }
    return data_[pos_++];
}

void
RangeDecoder::normalize()
{
    while (range_ < kTopValue) {
        code_ = (code_ << 8) | nextByte();
        range_ <<= 8;
    }
}

std::uint32_t
RangeDecoder::decodeGetValue(std::uint32_t total)
{
    assert(total > 0 && total <= RangeEncoder::kMaxTotal);
    range_ /= total;
    std::uint32_t value = code_ / range_;
    if (value >= total) {
        value = total - 1;
        overrun_ = true;
    }
    return value;
}

void
RangeDecoder::decodeSpan(std::uint32_t cum, std::uint32_t freq)
{
    code_ -= cum * range_;
    range_ *= freq;
    normalize();
}

int
RangeDecoder::decodeBit(std::uint16_t &prob)
{
    const std::uint32_t bound =
        (range_ >> kBitModelTotalBits) * prob;
    int bit;
    if (code_ < bound) {
        range_ = bound;
        prob = static_cast<std::uint16_t>(
            prob + ((kBitModelTotal - prob) >> kBitMoveBits));
        bit = 0;
    } else {
        code_ -= bound;
        range_ -= bound;
        prob = static_cast<std::uint16_t>(prob -
                                          (prob >> kBitMoveBits));
        bit = 1;
    }
    normalize();
    return bit;
}

// ---------------------------------------------------------------------
// AdaptiveByteModel
// ---------------------------------------------------------------------

AdaptiveByteModel::AdaptiveByteModel()
{
    // Initialize every symbol with frequency 1.
    for (int symbol = 0; symbol < 256; ++symbol) {
        for (int i = symbol + 1; i <= 256; i += i & (-i))
            ++tree_[i];
    }
    total_ = 256;
}

std::uint32_t
AdaptiveByteModel::cumFreq(int symbol) const
{
    std::uint32_t sum = 0;
    for (int i = symbol; i > 0; i -= i & (-i))
        sum += tree_[i];
    return sum;
}

int
AdaptiveByteModel::symbolFromCum(std::uint32_t cum) const
{
    // Largest prefix whose cumulative frequency is <= cum.
    int index = 0;
    std::uint32_t remaining = cum;
    for (int step = 256; step > 0; step >>= 1) {
        const int next = index + step;
        if (next <= 256 && tree_[next] <= remaining) {
            index = next;
            remaining -= tree_[next];
        }
    }
    return index;  // symbol whose interval contains cum
}

void
AdaptiveByteModel::update(int symbol)
{
    for (int i = symbol + 1; i <= 256; i += i & (-i))
        tree_[i] += kIncrement;
    total_ += kIncrement;
    if (total_ >= kRescaleLimit)
        rescale();
}

void
AdaptiveByteModel::rescale()
{
    // Recover per-symbol frequencies, halve (floor at 1), rebuild.
    std::array<std::uint32_t, 256> freq;
    for (int symbol = 0; symbol < 256; ++symbol)
        freq[symbol] = cumFreq(symbol + 1) - cumFreq(symbol);
    tree_.fill(0);
    total_ = 0;
    for (int symbol = 0; symbol < 256; ++symbol) {
        const std::uint32_t f = (freq[symbol] + 1) / 2;
        total_ += f;
        for (int i = symbol + 1; i <= 256; i += i & (-i))
            tree_[i] += f;
    }
}

void
AdaptiveByteModel::encode(RangeEncoder &encoder, std::uint8_t symbol)
{
    const std::uint32_t cum = cumFreq(symbol);
    const std::uint32_t freq = cumFreq(symbol + 1) - cum;
    encoder.encodeSpan(cum, freq, total_);
    update(symbol);
}

std::uint8_t
AdaptiveByteModel::decode(RangeDecoder &decoder)
{
    const std::uint32_t value = decoder.decodeGetValue(total_);
    const int symbol = symbolFromCum(value);
    const std::uint32_t cum = cumFreq(symbol);
    const std::uint32_t freq = cumFreq(symbol + 1) - cum;
    decoder.decodeSpan(cum, freq);
    update(symbol);
    return static_cast<std::uint8_t>(symbol);
}

// ---------------------------------------------------------------------
// ContextualByteCoder
// ---------------------------------------------------------------------

int
ContextualByteCoder::parentBucket(std::uint8_t parent_byte)
{
    int count = 0;
    for (int bit = 0; bit < 8; ++bit)
        count += (parent_byte >> bit) & 1;
    if (count <= 2)
        return 0;
    return count <= 5 ? 1 : 2;
}

void
ContextualByteCoder::encode(RangeEncoder &encoder,
                            std::uint8_t parent_byte,
                            std::uint8_t symbol)
{
    models_[parentBucket(parent_byte)].encode(encoder, symbol);
}

std::uint8_t
ContextualByteCoder::decode(RangeDecoder &decoder,
                            std::uint8_t parent_byte)
{
    return models_[parentBucket(parent_byte)].decode(decoder);
}

// ---------------------------------------------------------------------
// Whole-buffer helpers
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
entropyCompress(const std::vector<std::uint8_t> &input)
{
    std::vector<std::uint8_t> out;
    out.reserve(input.size() / 2 + 16);
    RangeEncoder encoder(out);
    AdaptiveByteModel model;
    for (const std::uint8_t byte : input)
        model.encode(encoder, byte);
    encoder.finish();
    return out;
}

Expected<std::vector<std::uint8_t>>
entropyDecompress(const std::vector<std::uint8_t> &input,
                  std::size_t output_size)
{
    // `output_size` comes from an untrusted stream header: cap the
    // up-front reservation and let push_back grow on demand, so a
    // corrupt 2^60 claim fails via decoder overrun instead of OOM.
    EDGEPCC_CHECK_CORRUPT(output_size <= kMaxDecodeItems * 8,
                          "entropyDecompress: implausible size");
    std::vector<std::uint8_t> out;
    out.reserve(std::min(output_size, input.size() * 8 + 64));
    RangeDecoder decoder(input);
    AdaptiveByteModel model;
    for (std::size_t i = 0; i < output_size; ++i) {
        out.push_back(model.decode(decoder));
        if (decoder.overrun())
            return corruptBitstream(
                "entropyDecompress: truncated stream");
    }
    return out;
}

}  // namespace edgepcc
