#include "edgepcc/dataset/catalogue.h"

#include <algorithm>
#include <cstdlib>

namespace edgepcc {

std::vector<CatalogueEntry>
paperCatalogue()
{
    // Paper Table I (8iVFB: full bodies; MVUB: upper bodies).
    return {
        {"Redandblack", 300, 727070, false},
        {"Longdress", 300, 834315, false},
        {"Loot", 300, 793821, false},
        {"Soldier", 300, 1075299, false},
        {"Andrew10", 318, 1298699, true},
        {"Phil10", 245, 1486648, true},
    };
}

VideoSpec
makeVideoSpec(const CatalogueEntry &entry, double scale)
{
    VideoSpec spec;
    spec.name = entry.name;
    // Stable per-video seed derived from the name.
    std::uint64_t seed = 0xed9e5cc1ull;
    for (const char *c = entry.name; *c; ++c)
        seed = seed * 131 + static_cast<std::uint64_t>(*c);
    spec.seed = seed;
    spec.num_frames = entry.num_frames;
    spec.target_points = static_cast<std::size_t>(
        static_cast<double>(entry.points_per_frame) * scale);
    spec.target_points =
        std::max<std::size_t>(spec.target_points, 1000);
    spec.upper_body_only = entry.upper_body_only;
    return spec;
}

std::vector<VideoSpec>
paperVideoSpecs(double scale)
{
    std::vector<VideoSpec> specs;
    for (const CatalogueEntry &entry : paperCatalogue())
        specs.push_back(makeVideoSpec(entry, scale));
    return specs;
}

double
workloadScaleFromEnv(double fallback)
{
    const char *env = std::getenv("EDGEPCC_SCALE");
    if (!env)
        return fallback;
    const double value = std::atof(env);
    if (value <= 0.0)
        return fallback;
    return std::min(value, 1.0);
}

int
framesFromEnv(int fallback)
{
    const char *env = std::getenv("EDGEPCC_FRAMES");
    if (!env)
        return fallback;
    const int value = std::atoi(env);
    return value > 0 ? value : fallback;
}

}  // namespace edgepcc
