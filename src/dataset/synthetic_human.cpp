#include "edgepcc/dataset/synthetic_human.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/parallel/radix_sort.h"

namespace edgepcc {

namespace {

constexpr double kPi = std::numbers::pi;

/** One posed capsule: segment p0..p1 with radius r (voxels). */
struct Capsule {
    Vec3f p0;
    Vec3f p1;
    float r = 1.0f;

    float length() const { return (p1 - p0).norm(); }

    double
    area() const
    {
        const double radius = r;
        return 2.0 * kPi * radius *
                   static_cast<double>(length()) +
               4.0 * kPi * radius * radius;
    }
};

/** Skeleton part ids. */
enum Part {
    kTorso = 0,
    kHead,
    kUpperArmL,
    kForearmL,
    kUpperArmR,
    kForearmR,
    kThighL,
    kShinL,
    kThighR,
    kShinR,
    kNumParts,
};

/** Rotates `p` about `pivot` in the (y, z) plane by `angle`. */
Vec3f
rotateX(const Vec3f &p, const Vec3f &pivot, double angle)
{
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    const double y = p.y - pivot.y;
    const double z = p.z - pivot.z;
    return Vec3f(p.x,
                 pivot.y + static_cast<float>(c * y - s * z),
                 pivot.z + static_cast<float>(s * y + c * z));
}

/** Joint swing angles for one frame. */
struct Pose {
    double arm_l = 0.0;
    double arm_r = 0.0;
    double forearm_l = 0.0;
    double forearm_r = 0.0;
    double leg_l = 0.0;
    double leg_r = 0.0;
    double head_nod = 0.0;
    double sway = 0.0;  ///< lateral translation in voxels
};

Pose
poseAt(const VideoSpec &spec, int frame)
{
    Pose pose;
    const double phase =
        2.0 * kPi * static_cast<double>(frame) / spec.motion_period;
    const double amp = spec.motion_amplitude;
    pose.arm_l = amp * std::sin(phase);
    pose.arm_r = -amp * std::sin(phase);
    pose.forearm_l = 0.6 * amp * std::sin(phase + 0.7);
    pose.forearm_r = -0.6 * amp * std::sin(phase + 0.7);
    pose.leg_l = 0.5 * amp * std::sin(phase + kPi);
    pose.leg_r = -0.5 * amp * std::sin(phase + kPi);
    pose.head_nod = 0.15 * amp * std::sin(0.5 * phase);
    pose.sway = spec.sway_voxels * std::sin(0.5 * phase);
    return pose;
}

/**
 * Builds the posed skeleton for one frame. `height` is the body
 * height in voxels; the body stands centered at x=z=512.
 */
std::vector<Capsule>
buildSkeleton(const VideoSpec &spec, double height, int frame)
{
    const Pose pose = poseAt(spec, frame);
    const float h = static_cast<float>(height);
    const float cx = 512.0f + static_cast<float>(pose.sway);
    const float cz = 512.0f;
    const float base = spec.upper_body_only
                           ? 40.0f - 0.40f * h  // crop below torso
                           : 40.0f;

    const auto at = [&](float dx, float fy, float dz) {
        return Vec3f(cx + dx * h, base + fy * h, cz + dz * h);
    };

    // The MVUB upper bodies fill a similar voxel count with half the
    // body, so the parts are bulkier.
    const float bulk = spec.upper_body_only ? 1.55f : 1.0f;

    std::vector<Capsule> parts(kNumParts);
    parts[kTorso] = {at(0.0f, 0.50f, 0.0f), at(0.0f, 0.80f, 0.0f),
                     0.105f * h * bulk};
    parts[kHead] = {at(0.0f, 0.865f, 0.0f),
                    at(0.0f, 0.925f, 0.0f), 0.055f * h * bulk};
    parts[kHead].p1 =
        rotateX(parts[kHead].p1, parts[kHead].p0, pose.head_nod);

    const float arm_r_vox = 0.034f * h * bulk;
    const float fore_r_vox = 0.029f * h * bulk;
    const Vec3f shoulder_l = at(0.125f * bulk, 0.775f, 0.0f);
    const Vec3f shoulder_r = at(-0.125f * bulk, 0.775f, 0.0f);
    Vec3f elbow_l = at(0.145f * bulk, 0.615f, 0.0f);
    Vec3f elbow_r = at(-0.145f * bulk, 0.615f, 0.0f);
    Vec3f wrist_l = at(0.150f * bulk, 0.47f, 0.02f);
    Vec3f wrist_r = at(-0.150f * bulk, 0.47f, 0.02f);
    elbow_l = rotateX(elbow_l, shoulder_l, pose.arm_l);
    wrist_l = rotateX(wrist_l, shoulder_l, pose.arm_l);
    wrist_l = rotateX(wrist_l, elbow_l, pose.forearm_l);
    elbow_r = rotateX(elbow_r, shoulder_r, pose.arm_r);
    wrist_r = rotateX(wrist_r, shoulder_r, pose.arm_r);
    wrist_r = rotateX(wrist_r, elbow_r, pose.forearm_r);
    parts[kUpperArmL] = {shoulder_l, elbow_l, arm_r_vox};
    parts[kForearmL] = {elbow_l, wrist_l, fore_r_vox};
    parts[kUpperArmR] = {shoulder_r, elbow_r, arm_r_vox};
    parts[kForearmR] = {elbow_r, wrist_r, fore_r_vox};

    if (spec.upper_body_only) {
        // No legs: keep tiny stubs merged into the torso base so
        // part indices stay stable; give them zero-ish area.
        const Capsule stub{at(0.0f, 0.50f, 0.0f),
                           at(0.0f, 0.50f, 0.0f), 0.001f * h};
        parts[kThighL] = parts[kShinL] = stub;
        parts[kThighR] = parts[kShinR] = stub;
        return parts;
    }

    const float thigh_r_vox = 0.050f * h;
    const float shin_r_vox = 0.037f * h;
    const Vec3f hip_l = at(0.062f, 0.49f, 0.0f);
    const Vec3f hip_r = at(-0.062f, 0.49f, 0.0f);
    Vec3f knee_l = at(0.068f, 0.27f, 0.0f);
    Vec3f knee_r = at(-0.068f, 0.27f, 0.0f);
    Vec3f ankle_l = at(0.070f, 0.05f, 0.0f);
    Vec3f ankle_r = at(-0.070f, 0.05f, 0.0f);
    knee_l = rotateX(knee_l, hip_l, pose.leg_l);
    ankle_l = rotateX(ankle_l, hip_l, pose.leg_l);
    knee_r = rotateX(knee_r, hip_r, pose.leg_r);
    ankle_r = rotateX(ankle_r, hip_r, pose.leg_r);
    parts[kThighL] = {hip_l, knee_l, thigh_r_vox};
    parts[kShinL] = {knee_l, ankle_l, shin_r_vox};
    parts[kThighR] = {hip_r, knee_r, thigh_r_vox};
    parts[kShinR] = {knee_r, ankle_r, shin_r_vox};
    return parts;
}

/** Orthonormal basis (n1, n2) perpendicular to `axis`. The limbs
 *  are never parallel to +x, so (1,0,0) is a safe reference. */
void
capsuleBasis(const Vec3f &axis, Vec3f &n1, Vec3f &n2)
{
    const Vec3f a = axis.normalized();
    const Vec3f ref(1.0f, 0.0f, 0.0f);
    n1 = a.cross(ref).normalized();
    if (n1.norm() < 0.5f)
        n1 = a.cross(Vec3f(0.0f, 0.0f, 1.0f)).normalized();
    n2 = a.cross(n1).normalized();
}

/** 3D value-noise in [-1, 1] with two octaves. */
double
valueNoise(const Vec3f &p, std::uint64_t seed, double scale)
{
    const auto lattice = [seed](std::int64_t x, std::int64_t y,
                                std::int64_t z) {
        std::uint64_t h = seed;
        h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
        h ^= static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL;
        h ^= static_cast<std::uint64_t>(z) * 0x165667b19e3779f9ULL;
        h ^= h >> 29;
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 32;
        return static_cast<double>(h & 0xffffffu) /
                   static_cast<double>(0xffffffu) * 2.0 -
               1.0;
    };
    const double fx = static_cast<double>(p.x) * scale;
    const double fy = static_cast<double>(p.y) * scale;
    const double fz = static_cast<double>(p.z) * scale;
    const auto ix = static_cast<std::int64_t>(std::floor(fx));
    const auto iy = static_cast<std::int64_t>(std::floor(fy));
    const auto iz = static_cast<std::int64_t>(std::floor(fz));
    const double tx = fx - std::floor(fx);
    const double ty = fy - std::floor(fy);
    const double tz = fz - std::floor(fz);
    double value = 0.0;
    for (int corner = 0; corner < 8; ++corner) {
        const int dx = corner & 1;
        const int dy = (corner >> 1) & 1;
        const int dz = (corner >> 2) & 1;
        const double weight = (dx ? tx : 1.0 - tx) *
                              (dy ? ty : 1.0 - ty) *
                              (dz ? tz : 1.0 - tz);
        value += weight * lattice(ix + dx, iy + dy, iz + dz);
    }
    return value;
}

std::uint8_t
clampColor(double v)
{
    return static_cast<std::uint8_t>(
        std::clamp(v, 0.0, 255.0));
}

/** Deterministic per-(sample, frame) noise in [-1, 1]. */
double
frameNoise(std::uint64_t seed, std::size_t sample, int frame)
{
    SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(sample) << 20) ^
                  static_cast<std::uint64_t>(frame));
    return static_cast<double>(sm.next() & 0xffffu) / 65535.0 * 2.0 -
           1.0;
}

}  // namespace

SyntheticHumanVideo::SyntheticHumanVideo(VideoSpec spec)
    : spec_(std::move(spec))
{
    buildSamples();
}

void
SyntheticHumanVideo::buildSamples()
{
    // Choose the body height so the voxelized surface is close to
    // target_points. A surface of area A voxel^2 occupies ~1.25*A
    // voxels; solve for the height, generate once, correct once.
    double height = 900.0;
    for (int calibration = 0; calibration < 3; ++calibration) {
        const std::vector<Capsule> rest =
            buildSkeleton(spec_, height, 0);
        double area = 0.0;
        for (const Capsule &part : rest)
            area += part.area();
        const double wanted_area =
            static_cast<double>(spec_.target_points) / 1.10;
        double next =
            height * std::sqrt(wanted_area / std::max(area, 1.0));
        next = std::clamp(next, 60.0, 930.0);
        if (std::abs(next - height) / height < 0.01) {
            height = next;
            break;
        }
        height = next;
    }
    height_ = height;

    const std::vector<Capsule> rest =
        buildSkeleton(spec_, height_, 0);
    double total_area = 0.0;
    for (const Capsule &part : rest)
        total_area += part.area();

    // ~4 samples per voxel^2 of surface gives >98% voxel coverage.
    const double samples_per_area = 4.0;

    Rng rng(spec_.seed);

    // Per-part base colors: skin for head/arms, palette for cloth.
    Color part_color[kNumParts];
    const Color skin{
        static_cast<std::uint8_t>(185 + rng.bounded(40)),
        static_cast<std::uint8_t>(140 + rng.bounded(40)),
        static_cast<std::uint8_t>(110 + rng.bounded(40))};
    const auto cloth = [&rng]() {
        return Color{static_cast<std::uint8_t>(40 + rng.bounded(180)),
                     static_cast<std::uint8_t>(40 + rng.bounded(180)),
                     static_cast<std::uint8_t>(40 + rng.bounded(180))};
    };
    const Color torso_color = cloth();
    const Color leg_color = cloth();
    part_color[kTorso] = torso_color;
    part_color[kHead] = skin;
    part_color[kUpperArmL] = torso_color;
    part_color[kUpperArmR] = torso_color;
    part_color[kForearmL] = skin;
    part_color[kForearmR] = skin;
    part_color[kThighL] = leg_color;
    part_color[kThighR] = leg_color;
    part_color[kShinL] = leg_color;
    part_color[kShinR] = leg_color;

    const Vec3f light = Vec3f(0.4f, 0.8f, 0.45f).normalized();

    samples_.clear();
    for (int part = 0; part < kNumParts; ++part) {
        const Capsule &capsule =
            rest[static_cast<std::size_t>(part)];
        const double area = capsule.area();
        const auto count = static_cast<std::size_t>(
            area * samples_per_area);
        if (count == 0)
            continue;
        const double side_area =
            2.0 * kPi * static_cast<double>(capsule.r) *
            static_cast<double>(capsule.length());
        const double side_fraction = side_area / area;

        Vec3f axis = capsule.p1 - capsule.p0;
        Vec3f n1, n2;
        capsuleBasis(axis, n1, n2);

        for (std::size_t k = 0; k < count; ++k) {
            Sample sample;
            sample.part = part;
            Vec3f position;
            Vec3f normal;
            if (rng.uniform() < side_fraction) {
                sample.region = 0;
                sample.t = static_cast<float>(rng.uniform());
                sample.theta = static_cast<float>(
                    rng.uniform(0.0, 2.0 * kPi));
                const Vec3f radial =
                    n1 * std::cos(sample.theta) +
                    n2 * std::sin(sample.theta);
                position = capsule.p0 + axis * sample.t +
                           radial * capsule.r;
                normal = radial;
            } else {
                // Uniform direction on the hemisphere of one cap.
                Vec3f dir;
                do {
                    dir = Vec3f(
                        static_cast<float>(rng.uniform(-1, 1)),
                        static_cast<float>(rng.uniform(-1, 1)),
                        static_cast<float>(rng.uniform(-1, 1)));
                } while (dir.squaredNorm() > 1.0f ||
                         dir.squaredNorm() < 1e-6f);
                dir = dir.normalized();
                const Vec3f a = axis.normalized();
                const bool cap1 = rng.uniform() < 0.5;
                if (cap1 && dir.dot(a) < 0.0f)
                    dir = dir * -1.0f;
                if (!cap1 && dir.dot(a) > 0.0f)
                    dir = dir * -1.0f;
                sample.region = cap1 ? 2 : 1;
                sample.dir[0] = dir.x;
                sample.dir[1] = dir.y;
                sample.dir[2] = dir.z;
                position = (cap1 ? capsule.p1 : capsule.p0) +
                           dir * capsule.r;
                normal = dir;
            }

            // Color from the rest-pose position so it tracks the
            // surface across frames.
            const Color base =
                part_color[static_cast<std::size_t>(part)];
            const double noise_coarse =
                valueNoise(position, spec_.seed, 1.0 / 48.0);
            const double noise_fine =
                valueNoise(position, spec_.seed ^ 0x5151,
                           1.0 / 12.0);
            const double shade =
                0.86 +
                0.28 * static_cast<double>(std::max(
                           0.0f, normal.dot(light)));
            const double wobble =
                14.0 * noise_coarse + 6.0 * noise_fine;
            sample.color = Color{
                clampColor(base.r * shade + wobble),
                clampColor(base.g * shade + wobble),
                clampColor(base.b * shade + wobble)};
            samples_.push_back(sample);
        }
    }
}

VoxelCloud
SyntheticHumanVideo::frame(int index) const
{
    const std::vector<Capsule> skeleton =
        buildSkeleton(spec_, height_, index);
    const std::uint32_t grid = 1u << spec_.grid_bits;

    // Voxelize all samples, then dedupe via Morton sort.
    std::vector<KeyIndex> keyed;
    keyed.reserve(samples_.size());
    std::vector<Color> colors(samples_.size());

    for (std::size_t k = 0; k < samples_.size(); ++k) {
        const Sample &sample = samples_[k];
        const Capsule &capsule =
            skeleton[static_cast<std::size_t>(sample.part)];
        Vec3f position;
        if (sample.region == 0) {
            const Vec3f axis = capsule.p1 - capsule.p0;
            Vec3f n1, n2;
            capsuleBasis(axis, n1, n2);
            const Vec3f radial = n1 * std::cos(sample.theta) +
                                 n2 * std::sin(sample.theta);
            position = capsule.p0 + axis * sample.t +
                       radial * capsule.r;
        } else {
            const Vec3f dir(sample.dir[0], sample.dir[1],
                            sample.dir[2]);
            position = (sample.region == 2 ? capsule.p1
                                           : capsule.p0) +
                       dir * capsule.r;
        }
        const auto vx = static_cast<std::uint32_t>(std::clamp(
            std::lround(position.x), 0l,
            static_cast<long>(grid - 1)));
        const auto vy = static_cast<std::uint32_t>(std::clamp(
            std::lround(position.y), 0l,
            static_cast<long>(grid - 1)));
        const auto vz = static_cast<std::uint32_t>(std::clamp(
            std::lround(position.z), 0l,
            static_cast<long>(grid - 1)));
        keyed.push_back(KeyIndex{mortonEncode(vx, vy, vz),
                                 static_cast<std::uint32_t>(k)});

        // Temporal appearance drift: real captures re-estimate
        // exposure/shading every frame, so the color field wobbles
        // smoothly in space *and* time. This is what gives the
        // inter-frame reuse threshold a real distribution of block
        // distances to cut through (paper Fig. 3b / Fig. 10b).
        const Vec3f drift_pos =
            position +
            Vec3f(static_cast<float>(index) * 9.3f,
                  static_cast<float>(index) * 4.7f,
                  static_cast<float>(index) * -6.1f);
        const double shading_drift =
            spec_.shading_drift *
            valueNoise(drift_pos, spec_.seed ^ 0x77aa, 1.0 / 40.0);
        const double noise =
            spec_.color_noise * frameNoise(spec_.seed, k, index);
        const Color &c = sample.color;
        colors[k] = Color{clampColor(c.r + shading_drift + noise),
                          clampColor(c.g + shading_drift + noise),
                          clampColor(c.b + shading_drift + noise)};
    }

    radixSortPairs(keyed, 3 * spec_.grid_bits);

    VoxelCloud cloud(spec_.grid_bits);
    cloud.reserve(keyed.size() / 3);
    std::uint64_t prev = ~std::uint64_t{0};
    for (const KeyIndex &ki : keyed) {
        if (ki.key == prev)
            continue;
        prev = ki.key;
        const MortonXyz xyz = mortonDecode(ki.key);
        const Color &c = colors[ki.index];
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z), c.r, c.g,
                  c.b);
    }
    return cloud;
}

}  // namespace edgepcc
