#include "edgepcc/dataset/ply_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "edgepcc/geometry/voxelizer.h"

namespace edgepcc {

namespace {

enum class PlyFormat { kAscii, kBinaryLE };

struct Property {
    std::string type;
    std::string name;

    std::size_t
    byteSize() const
    {
        if (type == "float" || type == "float32" || type == "int" ||
            type == "int32" || type == "uint" || type == "uint32")
            return 4;
        if (type == "double" || type == "float64")
            return 8;
        if (type == "short" || type == "ushort" ||
            type == "int16" || type == "uint16")
            return 2;
        return 1;  // char/uchar/int8/uint8
    }
};

}  // namespace

Expected<PointCloud>
readPly(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return ioError("readPly: cannot open " + path);

    std::string line;
    if (!std::getline(file, line) || line.rfind("ply", 0) != 0)
        return corruptBitstream("readPly: missing ply magic");

    PlyFormat format = PlyFormat::kAscii;
    std::size_t vertex_count = 0;
    std::vector<Property> properties;
    bool in_vertex_element = false;

    while (std::getline(file, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::istringstream tokens(line);
        std::string keyword;
        tokens >> keyword;
        if (keyword == "comment")
            continue;
        if (keyword == "format") {
            std::string fmt;
            tokens >> fmt;
            if (fmt == "ascii") {
                format = PlyFormat::kAscii;
            } else if (fmt == "binary_little_endian") {
                format = PlyFormat::kBinaryLE;
            } else {
                return unimplemented(
                    "readPly: unsupported format " + fmt);
            }
        } else if (keyword == "element") {
            std::string name;
            std::size_t count;
            tokens >> name >> count;
            in_vertex_element = (name == "vertex");
            if (in_vertex_element)
                vertex_count = count;
        } else if (keyword == "property" && in_vertex_element) {
            Property property;
            tokens >> property.type >> property.name;
            if (property.type == "list")
                return unimplemented(
                    "readPly: list property on vertex element");
            properties.push_back(property);
        } else if (keyword == "end_header") {
            break;
        }
    }

    int ix = -1, iy = -1, iz = -1, ir = -1, ig = -1, ib = -1;
    for (std::size_t p = 0; p < properties.size(); ++p) {
        const std::string &name = properties[p].name;
        const int index = static_cast<int>(p);
        if (name == "x") ix = index;
        else if (name == "y") iy = index;
        else if (name == "z") iz = index;
        else if (name == "red" || name == "r") ir = index;
        else if (name == "green" || name == "g") ig = index;
        else if (name == "blue" || name == "b") ib = index;
    }
    if (ix < 0 || iy < 0 || iz < 0)
        return corruptBitstream("readPly: missing x/y/z properties");

    PointCloud cloud;
    cloud.reserve(vertex_count);

    if (format == PlyFormat::kAscii) {
        std::vector<double> values(properties.size());
        for (std::size_t v = 0; v < vertex_count; ++v) {
            if (!std::getline(file, line))
                return corruptBitstream(
                    "readPly: truncated vertex data");
            std::istringstream tokens(line);
            for (double &value : values) {
                if (!(tokens >> value))
                    return corruptBitstream(
                        "readPly: malformed vertex line");
            }
            Color color{128, 128, 128};
            if (ir >= 0 && ig >= 0 && ib >= 0) {
                color = Color{
                    static_cast<std::uint8_t>(values[ir]),
                    static_cast<std::uint8_t>(values[ig]),
                    static_cast<std::uint8_t>(values[ib])};
            }
            cloud.add(
                Vec3f(static_cast<float>(values[ix]),
                      static_cast<float>(values[iy]),
                      static_cast<float>(values[iz])),
                color);
        }
        return cloud;
    }

    // Binary little-endian (host is little-endian).
    std::size_t stride = 0;
    std::vector<std::size_t> offsets(properties.size());
    for (std::size_t p = 0; p < properties.size(); ++p) {
        offsets[p] = stride;
        stride += properties[p].byteSize();
    }
    std::vector<char> row(stride);
    const auto read_scalar = [&](int index) -> double {
        const Property &property =
            properties[static_cast<std::size_t>(index)];
        const char *src =
            row.data() + offsets[static_cast<std::size_t>(index)];
        if (property.type == "float" || property.type == "float32") {
            float value;
            std::memcpy(&value, src, 4);
            return static_cast<double>(value);
        }
        if (property.type == "double" ||
            property.type == "float64") {
            double value;
            std::memcpy(&value, src, 8);
            return value;
        }
        if (property.byteSize() == 2) {
            std::uint16_t value;
            std::memcpy(&value, src, 2);
            return value;
        }
        if (property.byteSize() == 4) {
            std::int32_t value;
            std::memcpy(&value, src, 4);
            return value;
        }
        return static_cast<double>(
            static_cast<std::uint8_t>(*src));
    };
    for (std::size_t v = 0; v < vertex_count; ++v) {
        if (!file.read(row.data(),
                       static_cast<std::streamsize>(stride)))
            return corruptBitstream(
                "readPly: truncated binary vertex data");
        Color color{128, 128, 128};
        if (ir >= 0 && ig >= 0 && ib >= 0) {
            color = Color{
                static_cast<std::uint8_t>(read_scalar(ir)),
                static_cast<std::uint8_t>(read_scalar(ig)),
                static_cast<std::uint8_t>(read_scalar(ib))};
        }
        cloud.add(Vec3f(static_cast<float>(read_scalar(ix)),
                        static_cast<float>(read_scalar(iy)),
                        static_cast<float>(read_scalar(iz))),
                  color);
    }
    return cloud;
}

Status
writePly(const std::string &path, const PointCloud &cloud,
         bool binary)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return ioError("writePly: cannot open " + path);
    file << "ply\nformat "
         << (binary ? "binary_little_endian" : "ascii")
         << " 1.0\ncomment EdgePCC export\nelement vertex "
         << cloud.size()
         << "\nproperty float x\nproperty float y\nproperty float "
            "z\nproperty uchar red\nproperty uchar green\nproperty "
            "uchar blue\nend_header\n";
    const auto &positions = cloud.positions();
    const auto &colors = cloud.colors();
    if (binary) {
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            file.write(
                reinterpret_cast<const char *>(&positions[i].x), 4);
            file.write(
                reinterpret_cast<const char *>(&positions[i].y), 4);
            file.write(
                reinterpret_cast<const char *>(&positions[i].z), 4);
            file.write(
                reinterpret_cast<const char *>(&colors[i].r), 1);
            file.write(
                reinterpret_cast<const char *>(&colors[i].g), 1);
            file.write(
                reinterpret_cast<const char *>(&colors[i].b), 1);
        }
    } else {
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            file << positions[i].x << ' ' << positions[i].y << ' '
                 << positions[i].z << ' '
                 << static_cast<int>(colors[i].r) << ' '
                 << static_cast<int>(colors[i].g) << ' '
                 << static_cast<int>(colors[i].b) << '\n';
        }
    }
    if (!file)
        return ioError("writePly: write failed for " + path);
    return Status::ok();
}

Expected<VoxelCloud>
readPlyVoxels(const std::string &path, int grid_bits)
{
    auto cloud = readPly(path);
    if (!cloud)
        return cloud.status();
    auto voxelized = voxelize(*cloud, grid_bits);
    if (!voxelized)
        return voxelized.status();
    return std::move(voxelized->cloud);
}

Status
writePlyVoxels(const std::string &path, const VoxelCloud &cloud,
               bool binary)
{
    PointCloud points;
    points.reserve(cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        points.add(Vec3f(cloud.x()[i], cloud.y()[i], cloud.z()[i]),
                   cloud.color(i));
    }
    return writePly(path, points, binary);
}

}  // namespace edgepcc
