#include "edgepcc/parallel/thread_pool.h"

#include <atomic>

namespace edgepcc {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutting_down_ = true;
    }
    task_available_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void
ThreadPool::wait()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (!queue_.empty()) {
            // Help drain instead of sleeping: the waiter often
            // submitted this work and owns the captures it uses.
            std::function<void()> task =
                std::move(queue_.front());
            queue_.pop_front();
            lock.unlock();
            task();
            lock.lock();
            if (--in_flight_ == 0)
                all_done_.notify_all();
            continue;
        }
        if (in_flight_ == 0)
            return;
        all_done_.wait(lock, [this] {
            return in_flight_ == 0 || !queue_.empty();
        });
    }
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--in_flight_ == 0)
            all_done_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_available_.wait(lock, [this] {
                return shutting_down_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (shutting_down_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

namespace {
std::atomic<ThreadPool *> global_override{nullptr};
}  // namespace

ThreadPool &
ThreadPool::global()
{
    if (ThreadPool *override_pool =
            global_override.load(std::memory_order_acquire))
        return *override_pool;
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0u;
    }());
    return pool;
}

void
ThreadPool::setGlobalOverride(ThreadPool *pool)
{
    global_override.store(pool, std::memory_order_release);
}

}  // namespace edgepcc
