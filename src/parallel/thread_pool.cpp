#include "edgepcc/parallel/thread_pool.h"

#include <atomic>
#include <utility>

namespace edgepcc {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        shutting_down_ = true;
    }
    task_available_.notifyAll();
    for (auto &worker : workers_)
        worker.join();
}

bool
ThreadPool::popTaskLocked(std::function<void()> &task)
{
    if (!high_queue_.empty()) {
        task = std::move(high_queue_.front());
        high_queue_.pop_front();
        return true;
    }
    if (queue_.empty())
        return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

void
ThreadPool::finishTask()
{
    MutexLock lock(mutex_);
    if (--in_flight_ == 0)
        all_done_.notifyAll();
}

void
ThreadPool::submit(std::function<void()> task)
{
    submit(std::move(task), TaskPriority::kNormal);
}

void
ThreadPool::submit(std::function<void()> task, TaskPriority priority)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        MutexLock lock(mutex_);
        if (priority == TaskPriority::kHigh)
            high_queue_.push_back(std::move(task));
        else
            queue_.push_back(std::move(task));
        ++in_flight_;
    }
    task_available_.notifyOne();
}

void
ThreadPool::wait()
{
    if (workers_.empty())
        return;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            // Help drain instead of sleeping: the waiter often
            // submitted this work and owns the captures it uses.
            while (!popTaskLocked(task)) {
                if (in_flight_ == 0)
                    return;
                all_done_.wait(mutex_);
            }
        }
        task();
        finishTask();
    }
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        MutexLock lock(mutex_);
        if (!popTaskLocked(task))
            return false;
    }
    task();
    finishTask();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!shutting_down_ && queue_.empty() &&
                   high_queue_.empty())
                task_available_.wait(mutex_);
            if (!popTaskLocked(task)) {
                // Queue drained during shutdown: exit.
                return;
            }
        }
        task();
        finishTask();
    }
}

namespace {
std::atomic<ThreadPool *> global_override{nullptr};
}  // namespace

ThreadPool &
ThreadPool::global()
{
    if (ThreadPool *override_pool =
            global_override.load(std::memory_order_acquire))
        return *override_pool;
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0u;
    }());
    return pool;
}

void
ThreadPool::setGlobalOverride(ThreadPool *pool)
{
    global_override.store(pool, std::memory_order_release);
}

}  // namespace edgepcc
