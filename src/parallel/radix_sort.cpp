#include "edgepcc/parallel/radix_sort.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <utility>

#include "edgepcc/platform/arena.h"
#include "edgepcc/platform/simd.h"

#if EDGEPCC_SIMD_X86
#include <immintrin.h>
#endif

namespace edgepcc {

namespace {

constexpr int kDigitBits = 8;
constexpr int kBuckets = 1 << kDigitBits;
constexpr int kMaxPasses = 64 / kDigitBits;

template <typename T, typename KeyOf>
void
radixSortImpl(std::vector<T> &data, int key_bits, const KeyOf &key_of)
{
    assert(key_bits >= 1 && key_bits <= 64);
    if (data.size() < 2)
        return;

    std::vector<T> scratch(data.size());
    const int passes = (key_bits + kDigitBits - 1) / kDigitBits;

    for (int pass = 0; pass < passes; ++pass) {
        const int shift = pass * kDigitBits;
        std::array<std::size_t, kBuckets> counts{};
        for (const T &item : data)
            ++counts[(key_of(item) >> shift) & (kBuckets - 1)];

        // Skip passes where every key shares the digit.
        if (counts[(key_of(data[0]) >> shift) & (kBuckets - 1)] ==
            data.size()) {
            continue;
        }

        std::size_t offset = 0;
        for (int bucket = 0; bucket < kBuckets; ++bucket) {
            const std::size_t count = counts[bucket];
            counts[bucket] = offset;
            offset += count;
        }
        for (const T &item : data) {
            const std::size_t bucket =
                (key_of(item) >> shift) & (kBuckets - 1);
            scratch[counts[bucket]++] = item;
        }
        data.swap(scratch);
    }
}

#if EDGEPCC_SIMD_X86

/** Digits of four consecutive keys for one pass, extracted with one
 *  vector shift+mask instead of four scalar chains. */
__attribute__((target("avx2"))) inline void
extractDigitsAvx2(const std::uint64_t *keys, int shift,
                  std::uint64_t *digits)
{
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(keys));
    const __m256i d = _mm256_and_si256(
        _mm256_srli_epi64(v, shift),
        _mm256_set1_epi64x(kBuckets - 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(digits), d);
}

__attribute__((target("avx2"))) void
scatterPassAvx2(const std::uint64_t *src_k,
                const std::uint32_t *src_v, std::uint64_t *dst_k,
                std::uint32_t *dst_v, std::size_t n, int shift,
                std::size_t *offsets)
{
    std::size_t i = 0;
    alignas(32) std::uint64_t digits[4];
    for (; i + 4 <= n; i += 4) {
        extractDigitsAvx2(src_k + i, shift, digits);
        for (int k = 0; k < 4; ++k) {
            const std::size_t pos = offsets[digits[k]]++;
            dst_k[pos] = src_k[i + static_cast<std::size_t>(k)];
            dst_v[pos] = src_v[i + static_cast<std::size_t>(k)];
        }
    }
    for (; i < n; ++i) {
        const std::size_t bucket =
            (src_k[i] >> shift) & (kBuckets - 1);
        const std::size_t pos = offsets[bucket]++;
        dst_k[pos] = src_k[i];
        dst_v[pos] = src_v[i];
    }
}

#endif  // EDGEPCC_SIMD_X86

void
scatterPassScalar(const std::uint64_t *src_k,
                  const std::uint32_t *src_v, std::uint64_t *dst_k,
                  std::uint32_t *dst_v, std::size_t n, int shift,
                  std::size_t *offsets)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t bucket =
            (src_k[i] >> shift) & (kBuckets - 1);
        const std::size_t pos = offsets[bucket]++;
        dst_k[pos] = src_k[i];
        dst_v[pos] = src_v[i];
    }
}

}  // namespace

void
radixSortPairs(std::vector<KeyIndex> &pairs, int key_bits)
{
    radixSortImpl(pairs, key_bits,
                  [](const KeyIndex &pair) { return pair.key; });
}

void
radixSortKeys(std::vector<std::uint64_t> &keys, int key_bits)
{
    radixSortImpl(keys, key_bits,
                  [](std::uint64_t key) { return key; });
}

void
radixSortKeysValues(std::uint64_t *keys, std::uint32_t *values,
                    std::size_t n, int key_bits)
{
    assert(key_bits >= 1 && key_bits <= 64);
    if (n < 2)
        return;
    const int passes = (key_bits + kDigitBits - 1) / kDigitBits;

    // Scratch: arena-backed inside a frame, heap otherwise.
    FrameArena *arena = currentFrameArena();
    std::vector<std::uint64_t> key_heap;
    std::vector<std::uint32_t> val_heap;
    std::uint64_t *key_scratch = nullptr;
    std::uint32_t *val_scratch = nullptr;
    if (arena != nullptr) {
        key_scratch = arena->allocateArray<std::uint64_t>(n);
        val_scratch = arena->allocateArray<std::uint32_t>(n);
    } else {
        key_heap.resize(n);
        val_heap.resize(n);
        key_scratch = key_heap.data();
        val_scratch = val_heap.data();
    }

    // All pass histograms in a single sweep over the keys: the sort
    // is memory-bound, so reading every key once instead of once
    // per pass is the dominant win on wide keys.
    std::array<std::size_t,
               static_cast<std::size_t>(kMaxPasses) * kBuckets>
        counts{};
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = keys[i];
        for (int pass = 0; pass < passes; ++pass) {
            ++counts[static_cast<std::size_t>(pass) * kBuckets +
                     ((key >> (pass * kDigitBits)) &
                      (kBuckets - 1))];
        }
    }

#if EDGEPCC_SIMD_X86
    const bool use_avx2 = activeSimdLevel() >= SimdLevel::kAvx2;
#endif

    std::uint64_t *src_k = keys;
    std::uint32_t *src_v = values;
    std::uint64_t *dst_k = key_scratch;
    std::uint32_t *dst_v = val_scratch;
    for (int pass = 0; pass < passes; ++pass) {
        std::size_t *pass_counts =
            counts.data() +
            static_cast<std::size_t>(pass) * kBuckets;
        // Skip passes where every key shares the digit (digit
        // uniformity is order-independent, so the pre-sweep
        // histogram stays valid across performed passes).
        if (*std::max_element(pass_counts,
                              pass_counts + kBuckets) == n) {
            continue;
        }
        std::size_t offset = 0;
        for (int bucket = 0; bucket < kBuckets; ++bucket) {
            const std::size_t count = pass_counts[bucket];
            pass_counts[bucket] = offset;
            offset += count;
        }
        const int shift = pass * kDigitBits;
#if EDGEPCC_SIMD_X86
        if (use_avx2) {
            scatterPassAvx2(src_k, src_v, dst_k, dst_v, n, shift,
                            pass_counts);
        } else {
            scatterPassScalar(src_k, src_v, dst_k, dst_v, n,
                              shift, pass_counts);
        }
#else
        scatterPassScalar(src_k, src_v, dst_k, dst_v, n, shift,
                          pass_counts);
#endif
        std::swap(src_k, dst_k);
        std::swap(src_v, dst_v);
    }
    // Ping-pong may end in the scratch arrays; the caller owns
    // `keys`/`values`, so move the result home.
    if (src_k != keys) {
        std::copy(src_k, src_k + n, keys);
        std::copy(src_v, src_v + n, values);
    }
}

}  // namespace edgepcc
