#include "edgepcc/parallel/radix_sort.h"

#include <array>
#include <cassert>
#include <utility>

namespace edgepcc {

namespace {

constexpr int kDigitBits = 8;
constexpr int kBuckets = 1 << kDigitBits;

template <typename T, typename KeyOf>
void
radixSortImpl(std::vector<T> &data, int key_bits, const KeyOf &key_of)
{
    assert(key_bits >= 1 && key_bits <= 64);
    if (data.size() < 2)
        return;

    std::vector<T> scratch(data.size());
    const int passes = (key_bits + kDigitBits - 1) / kDigitBits;

    for (int pass = 0; pass < passes; ++pass) {
        const int shift = pass * kDigitBits;
        std::array<std::size_t, kBuckets> counts{};
        for (const T &item : data)
            ++counts[(key_of(item) >> shift) & (kBuckets - 1)];

        // Skip passes where every key shares the digit.
        if (counts[(key_of(data[0]) >> shift) & (kBuckets - 1)] ==
            data.size()) {
            continue;
        }

        std::size_t offset = 0;
        for (int bucket = 0; bucket < kBuckets; ++bucket) {
            const std::size_t count = counts[bucket];
            counts[bucket] = offset;
            offset += count;
        }
        for (const T &item : data) {
            const std::size_t bucket =
                (key_of(item) >> shift) & (kBuckets - 1);
            scratch[counts[bucket]++] = item;
        }
        data.swap(scratch);
    }
}

}  // namespace

void
radixSortPairs(std::vector<KeyIndex> &pairs, int key_bits)
{
    radixSortImpl(pairs, key_bits,
                  [](const KeyIndex &pair) { return pair.key; });
}

void
radixSortKeys(std::vector<std::uint64_t> &keys, int key_bits)
{
    radixSortImpl(keys, key_bits,
                  [](std::uint64_t key) { return key; });
}

}  // namespace edgepcc
