#include "edgepcc/octree/sequential_builder.h"

#include "edgepcc/common/trace.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {

int
PointerOctree::insert(std::uint16_t x, std::uint16_t y,
                      std::uint16_t z)
{
    const std::uint64_t code = mortonEncode(x, y, z);
    std::int32_t current = 0;
    int walked = 0;
    for (int level = 0; level < depth_; ++level) {
        const int shift = 3 * (depth_ - 1 - level);
        const int octant = static_cast<int>((code >> shift) & 7);
        Node &node = nodes_[static_cast<std::size_t>(current)];
        std::int32_t child = node.children[octant];
        if (child < 0) {
            child = static_cast<std::int32_t>(nodes_.size());
            node.occupancy |=
                static_cast<std::uint8_t>(1u << octant);
            // Note: push_back may reallocate; `node` is dead after.
            nodes_[static_cast<std::size_t>(current)]
                .children[octant] = child;
            nodes_.emplace_back();
            if (level == depth_ - 1)
                ++num_leaves_;
        }
        current = child;
        ++walked;
    }
    return walked;
}

PointerOctree
buildSequentialOctree(const VoxelCloud &cloud, WorkRecorder *recorder)
{
    ScopedTrace trace("octree.sequential_build");
    PointerOctree tree(cloud.gridBits());
    std::uint64_t walked_total = 0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        walked_total += static_cast<std::uint64_t>(
            tree.insert(cloud.x()[i], cloud.y()[i], cloud.z()[i]));
    }
    recordKernel(
        recorder,
        KernelWork{.name = "octree.seq_insert",
                   .resource = ExecResource::kCpuSequential,
                   .invocations = cloud.size(),
                   .items = cloud.size(),
                   // Each level walked touches one node: octant
                   // extraction, child lookup, possible allocation.
                   .ops = walked_total,
                   .bytes = walked_total * 40});
    return tree;
}

namespace {

void
serializeNode(const PointerOctree &tree, std::int32_t index,
              int level, std::uint8_t parent_byte,
              std::vector<std::uint8_t> &out,
              std::vector<std::uint8_t> *contexts)
{
    const auto &node =
        tree.nodes()[static_cast<std::size_t>(index)];
    if (level == tree.depth())
        return;  // leaves carry no occupancy byte
    out.push_back(node.occupancy);
    if (contexts)
        contexts->push_back(parent_byte);
    for (int octant = 0; octant < 8; ++octant) {
        const std::int32_t child = node.children[octant];
        if (child >= 0) {
            serializeNode(tree, child, level + 1, node.occupancy,
                          out, contexts);
        }
    }
}

}  // namespace

std::vector<std::uint8_t>
serializeDepthFirst(const PointerOctree &tree,
                    WorkRecorder *recorder,
                    std::vector<std::uint8_t> *contexts)
{
    std::vector<std::uint8_t> out;
    out.reserve(tree.numNodes());
    if (contexts)
        contexts->reserve(tree.numNodes());
    serializeNode(tree, 0, 0, 0, out, contexts);
    recordKernel(
        recorder,
        KernelWork{.name = "octree.seq_serialize",
                   .resource = ExecResource::kCpuSequential,
                   .invocations = 1,
                   .items = tree.numNodes(),
                   .ops = tree.numNodes() * 9,
                   .bytes = tree.numNodes() * 40 + out.size()});
    return out;
}

}  // namespace edgepcc
