#include "edgepcc/octree/parallel_builder.h"

#include <cassert>

#include "edgepcc/common/trace.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/parallel/parallel_for.h"

namespace edgepcc {

namespace {

/** Removes adjacent duplicates from a sorted code array.
 *  Flag + scan + gather, the GPU formulation of std::unique. */
std::vector<std::uint64_t>
uniqueSorted(const std::vector<std::uint64_t> &codes,
             std::uint64_t *ops_accum)
{
    const std::size_t n = codes.size();
    std::vector<std::uint32_t> flags(n);
    parallelFor(0, n, [&](std::size_t i) {
        flags[i] = (i == 0 || codes[i] != codes[i - 1]) ? 1u : 0u;
    });
    std::vector<std::uint32_t> offsets = flags;
    const std::uint32_t unique_count = exclusiveScan(offsets);
    std::vector<std::uint64_t> out(unique_count);
    parallelFor(0, n, [&](std::size_t i) {
        if (flags[i])
            out[offsets[i]] = codes[i];
    });
    *ops_accum += n * 4;
    return out;
}

}  // namespace

Expected<FlatOctree>
buildParallelOctree(const std::vector<std::uint64_t> &sorted_codes,
                    int depth, WorkRecorder *recorder)
{
    if (sorted_codes.empty())
        return invalidArgument("buildParallelOctree: no codes");
    if (depth < 1 || depth > kMaxMortonBitsPerAxis)
        return invalidArgument("buildParallelOctree: bad depth");
    for (std::size_t i = 1; i < sorted_codes.size(); ++i) {
        if (sorted_codes[i - 1] > sorted_codes[i])
            return invalidArgument(
                "buildParallelOctree: codes not sorted");
    }

    std::uint64_t ops = 0;

    ScopedTrace levels_trace("octree.build_levels");
    // Per-level code arrays, leaves (level == depth) first.
    std::vector<std::vector<std::uint64_t>> levels(
        static_cast<std::size_t>(depth) + 1);
    levels[static_cast<std::size_t>(depth)] =
        uniqueSorted(sorted_codes, &ops);

    for (int level = depth - 1; level >= 0; --level) {
        const auto &below =
            levels[static_cast<std::size_t>(level) + 1];
        std::vector<std::uint64_t> shifted(below.size());
        parallelFor(0, below.size(), [&](std::size_t i) {
            shifted[i] = below[i] >> 3;
        });
        ops += below.size();
        levels[static_cast<std::size_t>(level)] =
            uniqueSorted(shifted, &ops);
    }
    assert(levels[0].size() == 1 && "root level must be singular");

    FlatOctree tree;
    tree.depth = depth;
    tree.level_offsets.resize(static_cast<std::size_t>(depth) + 2);
    std::size_t total = 0;
    for (int level = 0; level <= depth; ++level) {
        tree.level_offsets[static_cast<std::size_t>(level)] =
            static_cast<std::uint32_t>(total);
        total += levels[static_cast<std::size_t>(level)].size();
    }
    tree.level_offsets.back() = static_cast<std::uint32_t>(total);

    tree.codes.resize(total);
    tree.parent.assign(total, -1);
    for (int level = 0; level <= depth; ++level) {
        const auto &codes =
            levels[static_cast<std::size_t>(level)];
        const std::size_t base =
            tree.level_offsets[static_cast<std::size_t>(level)];
        parallelFor(0, codes.size(), [&](std::size_t i) {
            tree.codes[base + i] = codes[i];
        });
    }

    recordKernel(recorder,
                 KernelWork{.name = "octree.par_levels",
                            .resource = ExecResource::kGpu,
                            .invocations =
                                static_cast<std::uint64_t>(depth) + 1,
                            .items = total,
                            .ops = ops,
                            .bytes = total * 8 * 3});
    levels_trace.stop();

    ScopedTrace parents_trace("octree.link_parents");
    // Parent linking: node i at level l has parent code[i] >> 3 at
    // level l-1. Within a level the parent's local index equals the
    // number of parent-run boundaries seen so far (a scan).
    std::uint64_t parent_ops = 0;
    for (int level = 1; level <= depth; ++level) {
        const std::size_t lo =
            tree.level_offsets[static_cast<std::size_t>(level)];
        const std::size_t hi =
            tree.level_offsets[static_cast<std::size_t>(level) + 1];
        const std::size_t parent_base =
            tree.level_offsets[static_cast<std::size_t>(level) - 1];
        std::vector<std::uint32_t> boundary(hi - lo);
        parallelFor(0, hi - lo, [&](std::size_t i) {
            const std::uint64_t parent_code =
                tree.codes[lo + i] >> 3;
            boundary[i] =
                (i == 0 ||
                 (tree.codes[lo + i - 1] >> 3) != parent_code)
                    ? 1u
                    : 0u;
        });
        std::vector<std::uint32_t> scanned = boundary;
        exclusiveScan(scanned);
        parallelFor(0, hi - lo, [&](std::size_t i) {
            // Inclusive scan minus one = local parent index.
            const std::uint32_t local = scanned[i] + boundary[i] - 1;
            tree.parent[lo + i] = static_cast<std::int32_t>(
                parent_base + local);
        });
        parent_ops += (hi - lo) * 6;
    }
    recordKernel(recorder,
                 KernelWork{.name = "octree.par_parents",
                            .resource = ExecResource::kGpu,
                            .invocations =
                                static_cast<std::uint64_t>(depth),
                            .items = total,
                            .ops = parent_ops,
                            .bytes = total * 12});

    return tree;
}

std::vector<std::uint8_t>
occupancyFromFlatOctree(const FlatOctree &tree, WorkRecorder *recorder)
{
    ScopedTrace trace("octree.occupancy_merge");
    const std::size_t branch_count = tree.numBranchNodes();
    std::vector<std::uint8_t> occupancy(branch_count, 0);
    // Paper Algorithm 1: every non-root node contributes one bit to
    // its parent's occupancy byte. Parents of consecutive nodes can
    // coincide, so this merge runs as an atomic-OR GPU kernel on
    // device; functionally a single pass here.
    const std::size_t total = tree.numNodes();
    for (std::size_t i = 1; i < total; ++i) {
        const auto parent =
            static_cast<std::size_t>(tree.parent[i]);
        occupancy[parent] |= static_cast<std::uint8_t>(
            1u << (tree.codes[i] & 7));
    }
    recordKernel(recorder,
                 KernelWork{.name = "octree.occupancy_merge",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = total - 1,
                            .ops = (total - 1) * 3,
                            .bytes = (total - 1) * 10});
    return occupancy;
}

}  // namespace edgepcc
