#include "edgepcc/octree/geometry_codec.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "edgepcc/common/check.h"
#include "edgepcc/common/trace.h"

#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/entropy/range_coder.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/octree/parallel_builder.h"
#include "edgepcc/octree/sequential_builder.h"
#include "edgepcc/parallel/parallel_for.h"

namespace edgepcc {

namespace {

constexpr std::uint8_t kFlagBuilderParallel = 1u << 0;
constexpr std::uint8_t kFlagEntropy = 1u << 1;
constexpr std::uint8_t kFlagTightBbox = 1u << 2;
constexpr std::uint8_t kFlagContextual = 1u << 3;

/**
 * Tight-cuboid renormalization parameters (paper Fig. 5): the
 * octree is fitted to the occupied bounding cuboid instead of the
 * full capture grid. Coordinates are shifted by the per-axis
 * minimum and the tree depth shrinks to cover only the largest
 * extent, which both trims empty upper levels and keeps the Morton
 * codes short. On integer (pre-voxelized) input the shift is
 * exactly invertible; the paper's sub-voxel loss only appears for
 * float capture coordinates (see DESIGN.md).
 */
struct BoxParams {
    std::uint32_t min[3] = {0, 0, 0};
    int original_depth = 0;  ///< gridBits of the input cloud
};

/** Collapses duplicate codes, keeping the first point's color. */
VoxelCloud
dedupeSorted(const VoxelCloud &sorted,
             const std::vector<std::uint64_t> &codes,
             WorkRecorder *recorder)
{
    const std::size_t n = sorted.size();
    VoxelCloud out(sorted.gridBits());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && codes[i] == codes[i - 1])
            continue;
        out.add(sorted.x()[i], sorted.y()[i], sorted.z()[i],
                sorted.r()[i], sorted.g()[i], sorted.b()[i]);
    }
    recordKernel(recorder,
                 KernelWork{.name = "geom.dedup",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = n,
                            .ops = n * 3,
                            .bytes = n * (8 + 9)});
    return out;
}

void
writeHeader(BitWriter &writer, std::uint8_t flags, int depth,
            std::size_t num_voxels, const BoxParams *box)
{
    writer.writeBits('G', 8);
    writer.writeBits('E', 8);
    writer.writeBits('O', 8);
    writer.writeBits(flags, 8);
    writer.writeVarint(static_cast<std::uint64_t>(depth));
    writer.writeVarint(num_voxels);
    if (box) {
        writer.writeVarint(
            static_cast<std::uint64_t>(box->original_depth));
        for (int a = 0; a < 3; ++a)
            writer.writeVarint(box->min[a]);
    }
}

std::vector<std::uint8_t>
assemblePayload(std::uint8_t flags, int depth, std::size_t num_voxels,
                const BoxParams *box,
                const std::vector<std::uint8_t> &occupancy,
                const std::vector<std::uint8_t> *contexts,
                WorkRecorder *recorder)
{
    const bool entropy = flags & kFlagEntropy;
    const bool try_contextual =
        (flags & kFlagContextual) && contexts != nullptr;

    std::vector<std::uint8_t> packed;
    if (entropy) {
        const std::vector<std::uint8_t> order0 =
            entropyCompress(occupancy);
        packed = order0;
        flags &= static_cast<std::uint8_t>(~kFlagContextual);
        if (try_contextual) {
            // Mode decision: context modelling wins on locally
            // dense surfaces but can lose on uniformly sparse
            // ones; keep whichever stream is smaller (TMC13-style
            // encoder-side decision, signalled via the flag).
            std::vector<std::uint8_t> ctx_packed;
            RangeEncoder encoder(ctx_packed);
            ContextualByteCoder coder;
            for (std::size_t i = 0; i < occupancy.size(); ++i)
                coder.encode(encoder, (*contexts)[i],
                             occupancy[i]);
            encoder.finish();
            if (ctx_packed.size() < order0.size()) {
                packed = std::move(ctx_packed);
                flags |= kFlagContextual;
            }
        }
    } else {
        flags &= static_cast<std::uint8_t>(~kFlagContextual);
    }

    BitWriter writer;
    writeHeader(writer, flags, depth, num_voxels, box);
    writer.writeVarint(occupancy.size());
    if (entropy) {
        writer.writeVarint(packed.size());
        writer.writeBytes(packed.data(), packed.size());
        recordKernel(
            recorder,
            KernelWork{.name = "geom.entropy",
                       .resource = ExecResource::kCpuSequential,
                       .invocations = 1,
                       .items = occupancy.size(),
                       .ops = occupancy.size() *
                              (try_contextual ? 28u : 24u),
                       .bytes = occupancy.size() + packed.size()});
    } else {
        writer.writeBytes(occupancy.data(), occupancy.size());
    }
    return writer.take();
}

}  // namespace

Expected<GeometryEncoded>
encodeGeometry(const VoxelCloud &cloud, const GeometryConfig &config,
               WorkRecorder *recorder)
{
    ScopedTrace trace("geometry.encode");
    if (cloud.empty())
        return invalidArgument("encodeGeometry: empty cloud");

    const std::size_t n = cloud.size();
    const std::uint32_t grid = cloud.gridSize();
    int depth = cloud.gridBits();

    GeometryEncoded result;

    const bool parallel =
        config.builder == GeometryConfig::Builder::kParallelMorton;
    const bool tight = parallel && config.tight_bbox;

    std::uint8_t flags = 0;
    if (parallel)
        flags |= kFlagBuilderParallel;
    const bool entropy =
        config.entropy_coding || config.contextual_entropy;
    if (entropy)
        flags |= kFlagEntropy;
    if (config.contextual_entropy)
        flags |= kFlagContextual;
    if (tight)
        flags |= kFlagTightBbox;

    // ----- Normalization (proposed pipeline only) -----------------
    BoxParams box;
    box.original_depth = depth;
    VoxelCloud working = cloud;  // coordinates possibly rewritten
    if (tight) {
        ScopedStage stage(recorder, "geom.normalize");
        std::uint32_t lo[3] = {grid, grid, grid};
        std::uint32_t hi[3] = {0, 0, 0};
        for (std::size_t i = 0; i < n; ++i) {
            lo[0] = std::min<std::uint32_t>(lo[0], cloud.x()[i]);
            lo[1] = std::min<std::uint32_t>(lo[1], cloud.y()[i]);
            lo[2] = std::min<std::uint32_t>(lo[2], cloud.z()[i]);
            hi[0] = std::max<std::uint32_t>(hi[0], cloud.x()[i]);
            hi[1] = std::max<std::uint32_t>(hi[1], cloud.y()[i]);
            hi[2] = std::max<std::uint32_t>(hi[2], cloud.z()[i]);
        }
        std::uint32_t max_extent = 0;
        for (int a = 0; a < 3; ++a) {
            box.min[a] = lo[a];
            max_extent =
                std::max(max_extent, hi[a] - lo[a]);
        }
        recordKernel(recorder,
                     KernelWork{.name = "geom.bbox_reduce",
                                .resource = ExecResource::kGpu,
                                .invocations = 1,
                                .items = n,
                                .ops = n * 6,
                                .bytes = n * 6});
        // Fit the tree to the cuboid: shift out the minimum and
        // shrink the depth to cover the largest extent.
        depth = std::max(1, bitWidth(max_extent));
        parallelFor(0, n, [&](std::size_t i) {
            working.mutableX()[i] = static_cast<std::uint16_t>(
                cloud.x()[i] - box.min[0]);
            working.mutableY()[i] = static_cast<std::uint16_t>(
                cloud.y()[i] - box.min[1]);
            working.mutableZ()[i] = static_cast<std::uint16_t>(
                cloud.z()[i] - box.min[2]);
        });
        recordKernel(recorder,
                     KernelWork{.name = "geom.requant",
                                .resource = ExecResource::kGpu,
                                .invocations = 1,
                                .items = n,
                                .ops = n * 6,
                                .bytes = n * 12});
    }
    result.depth = depth;

    if (parallel) {
        // ----- Morton generation + sort (Fig. 4c stage 1) ---------
        MortonOrder order;
        {
            ScopedStage stage(recorder, "geom.morton");
            order = computeMortonOrder(working, recorder);
        }

        // ----- Parallel octree construction ------------------------
        VoxelCloud unique_cloud(cloud.gridBits());
        std::vector<std::uint8_t> occupancy;
        std::vector<std::uint8_t> contexts;
        std::size_t num_voxels = 0;
        {
            ScopedStage stage(recorder, "geom.build");
            VoxelCloud sorted =
                applyOrder(working, order, recorder);
            unique_cloud =
                dedupeSorted(sorted, order.codes, recorder);
            num_voxels = unique_cloud.size();
            if (tight) {
                // Shift back so sorted_cloud carries the original
                // coordinates (order stays the shifted Morton
                // order, matching the decoder's output order).
                for (std::size_t i = 0; i < num_voxels; ++i) {
                    unique_cloud.mutableX()[i] =
                        static_cast<std::uint16_t>(
                            unique_cloud.x()[i] + box.min[0]);
                    unique_cloud.mutableY()[i] =
                        static_cast<std::uint16_t>(
                            unique_cloud.y()[i] + box.min[1]);
                    unique_cloud.mutableZ()[i] =
                        static_cast<std::uint16_t>(
                            unique_cloud.z()[i] + box.min[2]);
                }
            }
            std::vector<std::uint64_t> unique_codes;
            unique_codes.reserve(num_voxels);
            for (std::size_t i = 0; i < order.codes.size(); ++i) {
                if (i == 0 || order.codes[i] != order.codes[i - 1])
                    unique_codes.push_back(order.codes[i]);
            }
            auto tree =
                buildParallelOctree(unique_codes, depth, recorder);
            if (!tree)
                return tree.status();

            // ----- Post processing (Algorithm 1 + stream) ----------
            occupancy = occupancyFromFlatOctree(*tree, recorder);
            if (config.contextual_entropy) {
                // Parent occupancy byte of each branch node (the
                // parents of branch nodes are branch nodes, so
                // they index into `occupancy` directly).
                contexts.resize(occupancy.size(), 0);
                for (std::size_t i = 1; i < occupancy.size();
                     ++i) {
                    contexts[i] =
                        occupancy[static_cast<std::size_t>(
                            tree->parent[i])];
                }
            }
        }
        {
            ScopedStage stage(recorder, "geom.post");
            result.payload = assemblePayload(
                flags, depth, num_voxels, tight ? &box : nullptr,
                occupancy,
                config.contextual_entropy ? &contexts : nullptr,
                recorder);
        }
        result.num_voxels = num_voxels;
        result.sorted_cloud = std::move(unique_cloud);
        return result;
    }

    // ----- Sequential baseline (Fig. 4a) ---------------------------
    std::vector<std::uint8_t> occupancy;
    std::vector<std::uint8_t> contexts;
    {
        ScopedStage stage(recorder, "geom.build");
        const PointerOctree tree =
            buildSequentialOctree(working, recorder);
        ScopedStage serialize_stage(recorder, "geom.serialize");
        occupancy = serializeDepthFirst(
            tree, recorder,
            config.contextual_entropy ? &contexts : nullptr);
    }
    // The attribute stage needs the Morton-sorted unique cloud; in
    // TMC13 this ordering falls out of the octree itself, so its cost
    // is part of the RAHT calibration and is not recorded here.
    MortonOrder order = computeMortonOrder(working, nullptr);
    VoxelCloud sorted = applyOrder(working, order, nullptr);
    result.sorted_cloud = dedupeSorted(sorted, order.codes, nullptr);
    result.num_voxels = result.sorted_cloud.size();

    {
        ScopedStage stage(recorder, "geom.post");
        result.payload = assemblePayload(
            flags, depth, result.num_voxels, nullptr, occupancy,
            config.contextual_entropy ? &contexts : nullptr,
            recorder);
    }
    return result;
}

namespace {

struct ParsedHeader {
    std::uint8_t flags = 0;
    int depth = 0;
    std::size_t num_voxels = 0;
    BoxParams box;
    /** Plain (or order-0 pre-decoded) occupancy bytes. Empty in
     *  contextual mode, where `packed` is decoded on the fly. */
    std::vector<std::uint8_t> occupancy;
    std::vector<std::uint8_t> packed;
    std::size_t occupancy_size = 0;
};

/**
 * Byte supplier for tree expansion: either a plain buffer or a
 * context-conditioned range decoder (bytes must then be pulled in
 * stream order, with each node's parent byte as context).
 */
class OccupancyByteSource
{
  public:
    explicit OccupancyByteSource(const ParsedHeader &header)
        : header_(&header)
    {
        if (header.flags & kFlagContextual) {
            decoder_.emplace(header.packed);
            remaining_ = header.occupancy_size;
        }
    }

    /** Next occupancy byte; -1 on underflow/corruption. */
    int
    next(std::uint8_t parent_byte)
    {
        if (decoder_) {
            if (remaining_ == 0)
                return -1;
            --remaining_;
            const std::uint8_t byte =
                coder_.decode(*decoder_, parent_byte);
            if (decoder_->overrun())
                return -1;
            return byte;
        }
        if (cursor_ >= header_->occupancy.size())
            return -1;
        return header_->occupancy[cursor_++];
    }

    /** True when exactly all bytes were consumed. */
    bool
    exhausted() const
    {
        return decoder_ ? remaining_ == 0
                        : cursor_ == header_->occupancy.size();
    }

  private:
    const ParsedHeader *header_;
    std::size_t cursor_ = 0;
    std::optional<RangeDecoder> decoder_;
    ContextualByteCoder coder_;
    std::size_t remaining_ = 0;
};

Expected<ParsedHeader>
parsePayload(const std::vector<std::uint8_t> &payload)
{
    BitReader reader(payload);
    ParsedHeader header;
    const auto g = reader.readBits(8);
    const auto e = reader.readBits(8);
    const auto o = reader.readBits(8);
    if (g != 'G' || e != 'E' || o != 'O')
        return corruptBitstream("geometry payload: bad magic");
    header.flags = static_cast<std::uint8_t>(reader.readBits(8));
    header.depth = static_cast<int>(reader.readVarint());
    header.num_voxels =
        static_cast<std::size_t>(reader.readVarint());
    EDGEPCC_CHECK_CORRUPT(header.depth >= 1 &&
                              header.depth <= kMaxMortonBitsPerAxis,
                          "geometry payload: bad depth");
    EDGEPCC_CHECK_CORRUPT(header.num_voxels <= kMaxDecodeItems,
                          "geometry payload: implausible voxel count");
    if (header.flags & kFlagTightBbox) {
        header.box.original_depth =
            static_cast<int>(reader.readVarint());
        EDGEPCC_CHECK_CORRUPT(
            header.box.original_depth >= header.depth &&
                header.box.original_depth <= kMaxMortonBitsPerAxis,
            "geometry payload: bad original depth");
        for (int a = 0; a < 3; ++a) {
            header.box.min[a] =
                static_cast<std::uint32_t>(reader.readVarint());
            // The shift-back in decodeGeometry adds box.min to
            // 21-bit Morton components; an unchecked 2^32-scale
            // minimum would wrap std::uint32_t and dodge the grid
            // bound below.
            EDGEPCC_CHECK_CORRUPT(
                header.box.min[a] <
                    (1u << header.box.original_depth),
                "geometry payload: bbox origin outside grid");
        }
    }
    const auto occupancy_size =
        static_cast<std::size_t>(reader.readVarint());
    header.occupancy_size = occupancy_size;
    // Every occupancy byte is one branch node; a stream can never
    // legitimately carry more nodes than leaves it can produce.
    EDGEPCC_CHECK_CORRUPT(occupancy_size <= kMaxDecodeItems * 2,
                          "geometry payload: implausible node count");
    if (header.flags & kFlagEntropy) {
        const auto packed_size =
            static_cast<std::size_t>(reader.readVarint());
        reader.alignToByte();
        EDGEPCC_CHECK_CORRUPT(
            !reader.overrun() &&
                reader.byteOffset() + packed_size <= payload.size(),
            "geometry payload: truncated entropy block");
        std::vector<std::uint8_t> packed(
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            packed_size));
        if (header.flags & kFlagContextual) {
            // Contextual decoding interleaves with expansion.
            header.packed = std::move(packed);
        } else {
            auto unpacked =
                entropyDecompress(packed, occupancy_size);
            if (!unpacked)
                return unpacked.status();
            header.occupancy = unpacked.takeValue();
        }
    } else {
        reader.alignToByte();
        if (reader.byteOffset() + occupancy_size > payload.size())
            return corruptBitstream(
                "geometry payload: truncated occupancy");
        header.occupancy.assign(
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            occupancy_size));
    }
    if (reader.overrun())
        return corruptBitstream("geometry payload: header overrun");
    return header;
}

/** Expands BFS occupancy bytes into sorted leaf codes. */
Expected<std::vector<std::uint64_t>>
expandBreadthFirst(const ParsedHeader &header)
{
    OccupancyByteSource source(header);

    struct Node {
        std::uint64_t code;
        std::uint8_t parent_byte;
    };
    std::vector<Node> frontier{{0, 0}};
    for (int level = 0; level < header.depth; ++level) {
        std::vector<Node> next;
        next.reserve(frontier.size() * 2);
        for (const Node &node : frontier) {
            const int bits = source.next(node.parent_byte);
            if (bits < 0)
                return corruptBitstream(
                    "geometry payload: occupancy underflow");
            if (bits == 0)
                return corruptBitstream(
                    "geometry payload: empty branch node");
            for (int octant = 0; octant < 8; ++octant) {
                if (bits & (1 << octant)) {
                    next.push_back(
                        {(node.code << 3) |
                             static_cast<std::uint64_t>(octant),
                         static_cast<std::uint8_t>(bits)});
                }
            }
        }
        frontier = std::move(next);
        EDGEPCC_CHECK_CORRUPT(
            frontier.size() <= kMaxDecodeItems,
            "geometry payload: tree expansion exceeds leaf cap");
    }
    if (!source.exhausted())
        return corruptBitstream(
            "geometry payload: trailing occupancy bytes");
    std::vector<std::uint64_t> leaves;
    leaves.reserve(frontier.size());
    for (const Node &node : frontier)
        leaves.push_back(node.code);
    return leaves;
}

/** Expands DFS occupancy bytes into sorted leaf codes. */
Expected<std::vector<std::uint64_t>>
expandDepthFirst(const ParsedHeader &header)
{
    OccupancyByteSource source(header);
    std::vector<std::uint64_t> leaves;

    struct StackEntry {
        std::uint64_t code;
        int level;
        std::uint8_t parent_byte;
    };
    std::vector<StackEntry> stack{{0, 0, 0}};
    while (!stack.empty()) {
        const StackEntry entry = stack.back();
        stack.pop_back();
        if (entry.level == header.depth) {
            EDGEPCC_CHECK_CORRUPT(
                leaves.size() < kMaxDecodeItems,
                "geometry payload: tree expansion exceeds leaf cap");
            leaves.push_back(entry.code);
            continue;
        }
        const int bits = source.next(entry.parent_byte);
        if (bits < 0)
            return corruptBitstream(
                "geometry payload: occupancy underflow");
        if (bits == 0)
            return corruptBitstream(
                "geometry payload: empty branch node");
        // Push octants in reverse so they pop in ascending order.
        for (int octant = 7; octant >= 0; --octant) {
            if (bits & (1 << octant)) {
                stack.push_back(
                    {(entry.code << 3) |
                         static_cast<std::uint64_t>(octant),
                     entry.level + 1,
                     static_cast<std::uint8_t>(bits)});
            }
        }
    }
    if (!source.exhausted())
        return corruptBitstream(
            "geometry payload: trailing occupancy bytes");
    return leaves;
}

}  // namespace

Expected<VoxelCloud>
decodeGeometry(const std::vector<std::uint8_t> &payload,
               WorkRecorder *recorder)
{
    ScopedTrace trace("geometry.decode");
    ScopedStage parse_stage(recorder, "geomdec.parse");
    auto header = parsePayload(payload);
    if (!header)
        return header.status();
    recordKernel(recorder,
                 KernelWork{.name = "geomdec.parse",
                            .resource = ExecResource::kCpuSequential,
                            .invocations = 1,
                            .items = header->occupancy_size,
                            .ops = header->occupancy_size *
                                   ((header->flags & kFlagEntropy)
                                        ? 30u
                                        : 1u),
                            .bytes = payload.size()});

    const bool parallel = header->flags & kFlagBuilderParallel;
    Expected<std::vector<std::uint64_t>> leaves =
        parallel ? expandBreadthFirst(*header)
                 : expandDepthFirst(*header);
    if (!leaves)
        return leaves.status();
    recordKernel(
        recorder,
        KernelWork{.name = "geomdec.expand",
                   .resource = parallel
                                   ? ExecResource::kGpu
                                   : ExecResource::kCpuSequential,
                   .invocations =
                       static_cast<std::uint64_t>(header->depth),
                   .items = header->occupancy_size,
                   .ops = header->occupancy_size * 10,
                   .bytes = header->occupancy_size +
                            leaves->size() * 8});

    if (header->num_voxels != 0 &&
        leaves->size() != header->num_voxels) {
        return corruptBitstream(
            "geometry payload: voxel count mismatch");
    }

    const bool tight = header->flags & kFlagTightBbox;
    // The output cloud lives on the original capture grid; the
    // coded tree may be shallower (cuboid-fitted).
    VoxelCloud cloud(tight ? header->box.original_depth
                           : header->depth);
    cloud.resize(leaves->size());
    const auto &codes = *leaves;
    const std::uint32_t grid_limit = cloud.gridSize();
    // Written concurrently by parallelFor chunks; relaxed is enough
    // (the flag only ever goes false -> true and is read after the
    // implicit join).
    std::atomic<bool> out_of_grid{false};
    const std::uint32_t off_x = tight ? header->box.min[0] : 0;
    const std::uint32_t off_y = tight ? header->box.min[1] : 0;
    const std::uint32_t off_z = tight ? header->box.min[2] : 0;
    std::uint16_t *cloud_x = cloud.mutableX().data();
    std::uint16_t *cloud_y = cloud.mutableY().data();
    std::uint16_t *cloud_z = cloud.mutableZ().data();
    const std::uint64_t *code_ptr = codes.data();
    parallelForChunks(
        0, codes.size(),
        [&](std::size_t lo, std::size_t hi) {
            // Decode in stack tiles so the SIMD batch kernel gets
            // contiguous SoA outputs without a heap round trip.
            constexpr std::size_t kTile = 512;
            std::uint32_t tx[kTile];
            std::uint32_t ty[kTile];
            std::uint32_t tz[kTile];
            for (std::size_t base = lo; base < hi; base += kTile) {
                const std::size_t n = std::min(kTile, hi - base);
                mortonDecodeBatch(code_ptr + base, n, tx, ty, tz);
                for (std::size_t k = 0; k < n; ++k) {
                    const std::uint32_t ox = tx[k] + off_x;
                    const std::uint32_t oy = ty[k] + off_y;
                    const std::uint32_t oz = tz[k] + off_z;
                    if (ox >= grid_limit || oy >= grid_limit ||
                        oz >= grid_limit) {
                        out_of_grid.store(
                            true, std::memory_order_relaxed);
                        continue;
                    }
                    cloud_x[base + k] =
                        static_cast<std::uint16_t>(ox);
                    cloud_y[base + k] =
                        static_cast<std::uint16_t>(oy);
                    cloud_z[base + k] =
                        static_cast<std::uint16_t>(oz);
                }
            }
        });
    if (out_of_grid.load(std::memory_order_relaxed))
        return corruptBitstream(
            "geometry payload: decoded voxel outside grid");
    recordKernel(recorder,
                 KernelWork{.name = "geomdec.dequant",
                            .resource = parallel
                                            ? ExecResource::kGpu
                                            : ExecResource::
                                                  kCpuSequential,
                            .invocations = 1,
                            .items = codes.size(),
                            .ops = codes.size() * 24,
                            .bytes = codes.size() * 14});
    return cloud;
}

}  // namespace edgepcc
