#include "edgepcc/interframe/block_matcher.h"

#include <algorithm>
#include <cmath>

#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {

namespace {

/** Per-block candidate window in the reference frame. */
struct Window {
    std::size_t start = 0;
    std::size_t count = 0;
};

Window
candidateWindow(std::size_t p_block, std::size_t p_blocks,
                std::size_t i_blocks, std::size_t window)
{
    Window w;
    const std::size_t center = static_cast<std::size_t>(
        static_cast<double>(p_block) *
        static_cast<double>(i_blocks) /
        static_cast<double>(std::max<std::size_t>(1, p_blocks)));
    const std::size_t half = window / 2;
    std::size_t start = center > half ? center - half : 0;
    if (start + window > i_blocks)
        start = i_blocks > window ? i_blocks - window : 0;
    w.start = start;
    w.count = std::min(window, i_blocks - start);
    return w;
}

/** Paper Eq. 2 over the first `count` point pairs of two blocks. */
std::uint64_t
blockDiffSquared(const VoxelCloud &p, std::size_t p_begin,
                 const VoxelCloud &i, std::size_t i_begin,
                 std::size_t count)
{
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < count; ++j) {
        const std::int32_t dr =
            static_cast<std::int32_t>(p.r()[p_begin + j]) -
            static_cast<std::int32_t>(i.r()[i_begin + j]);
        const std::int32_t dg =
            static_cast<std::int32_t>(p.g()[p_begin + j]) -
            static_cast<std::int32_t>(i.g()[i_begin + j]);
        const std::int32_t db =
            static_cast<std::int32_t>(p.b()[p_begin + j]) -
            static_cast<std::int32_t>(i.b()[i_begin + j]);
        sum += static_cast<std::uint64_t>(
            dr * dr + dg * dg + db * db);
    }
    return sum;
}

constexpr const char kMagic[3] = {'I', 'N', 'T'};

}  // namespace

Expected<InterAttrEncoded>
encodeInterAttr(const VoxelCloud &p_sorted,
                const VoxelCloud &i_reference,
                const BlockMatchConfig &config,
                WorkRecorder *recorder)
{
    const std::size_t np = p_sorted.size();
    const std::size_t ni = i_reference.size();
    if (np == 0 || ni == 0)
        return invalidArgument("encodeInterAttr: empty cloud");
    if (config.candidate_window == 0)
        return invalidArgument(
            "encodeInterAttr: candidate_window must be >= 1");

    // Block layouts share the points-per-block K so that block k of
    // each frame covers a comparable spatial span of the sorted
    // order.
    SegmentCodecConfig layout_cfg;
    layout_cfg.num_segments =
        config.num_blocks != 0
            ? config.num_blocks
            : static_cast<std::uint32_t>(
                  std::max<std::size_t>(1, np / 16));
    const SegmentLayout p_layout = makeSegmentLayout(np, layout_cfg);
    const std::size_t k = p_layout.points_per_segment;
    const std::size_t i_blocks = (ni + k - 1) / k;
    const std::size_t p_blocks = p_layout.num_segments;

    InterAttrEncoded result;
    result.stats.num_blocks =
        static_cast<std::uint32_t>(p_blocks);

    std::vector<std::uint32_t> best_offset(p_blocks, 0);
    std::vector<std::uint8_t> reuse_flag(p_blocks, 0);

    std::uint64_t total_comparisons = 0;
    std::uint64_t reused_points = 0;

    {
        TracedStage stage(recorder, "inter.match");
        for (std::size_t pb = 0; pb < p_blocks; ++pb) {
            const std::size_t p_begin = p_layout.begin(
                static_cast<std::uint32_t>(pb));
            const std::size_t p_end = p_layout.end(
                static_cast<std::uint32_t>(pb), np);
            const std::size_t kp = p_end - p_begin;

            const Window window = candidateWindow(
                pb, p_blocks, i_blocks, config.candidate_window);

            std::uint64_t best_diff = 0;
            std::uint32_t best = 0;
            std::size_t best_km = 1;
            bool have_best = false;
            for (std::size_t c = 0; c < window.count; ++c) {
                const std::size_t ib = window.start + c;
                const std::size_t i_begin = ib * k;
                const std::size_t i_end =
                    std::min(ni, i_begin + k);
                const std::size_t km =
                    std::min(kp, i_end - i_begin);
                if (km == 0)
                    continue;
                const std::uint64_t diff = blockDiffSquared(
                    p_sorted, p_begin, i_reference, i_begin, km);
                total_comparisons += km;
                // Normalize per point so short tail blocks compare
                // fairly against full-size ones.
                if (!have_best ||
                    diff * best_km < best_diff * km) {
                    best_diff = diff;
                    best = static_cast<std::uint32_t>(c);
                    best_km = km;
                    have_best = true;
                }
            }
            if (!have_best)
                best_diff = ~std::uint64_t{0} / 2;
            best_offset[pb] = best;
            const double per_point =
                static_cast<double>(best_diff) /
                static_cast<double>(best_km);
            if (per_point <= config.reuse_threshold) {
                reuse_flag[pb] = 1;
                ++result.stats.reused_blocks;
                reused_points += kp;
            } else {
                result.stats.delta_points += kp;
            }
        }

        recordKernel(
            recorder,
            KernelWork{.name = "bm.diff_squared",
                       .resource = ExecResource::kGpu,
                       // All block pairs are scored by one batched
                       // kernel launch on device.
                       .invocations = 1,
                       .items = total_comparisons,
                       .ops = total_comparisons * 9,
                       .bytes = total_comparisons * 6});
        recordKernel(
            recorder,
            KernelWork{.name = "bm.squared_sum",
                       .resource = ExecResource::kGpu,
                       .invocations = 1,
                       .items = total_comparisons,
                       .ops = total_comparisons,
                       .bytes = total_comparisons * 8});
        recordKernel(
            recorder,
            KernelWork{.name = "bm.argmin",
                       .resource = ExecResource::kGpu,
                       .invocations = 1,
                       .items = p_blocks * config.candidate_window,
                       .ops = p_blocks * config.candidate_window * 2,
                       .bytes = p_blocks * config.candidate_window *
                                8});
    }

    // Delta extraction for non-reused blocks.
    AttrChannels deltas;
    {
        TracedStage stage(recorder, "inter.delta");
        for (auto &channel : deltas)
            channel.reserve(result.stats.delta_points);
        for (std::size_t pb = 0; pb < p_blocks; ++pb) {
            if (reuse_flag[pb])
                continue;
            const std::size_t p_begin = p_layout.begin(
                static_cast<std::uint32_t>(pb));
            const std::size_t p_end = p_layout.end(
                static_cast<std::uint32_t>(pb), np);
            const Window window = candidateWindow(
                pb, p_blocks, i_blocks, config.candidate_window);
            const std::size_t ib = window.start + best_offset[pb];
            const std::size_t i_begin = ib * k;
            const std::size_t i_last =
                std::min(ni, i_begin + k) - 1;
            for (std::size_t j = 0; j < p_end - p_begin; ++j) {
                const std::size_t src =
                    std::min(i_begin + j, i_last);
                deltas[0].push_back(
                    static_cast<std::int32_t>(
                        p_sorted.r()[p_begin + j]) -
                    static_cast<std::int32_t>(
                        i_reference.r()[src]));
                deltas[1].push_back(
                    static_cast<std::int32_t>(
                        p_sorted.g()[p_begin + j]) -
                    static_cast<std::int32_t>(
                        i_reference.g()[src]));
                deltas[2].push_back(
                    static_cast<std::int32_t>(
                        p_sorted.b()[p_begin + j]) -
                    static_cast<std::int32_t>(
                        i_reference.b()[src]));
            }
        }
        // Address generation: every delta point's output slot comes
        // from a prefix sum over block sizes (Fig. 9's 32% stage).
        recordKernel(
            recorder,
            KernelWork{.name = "bm.address_gen",
                       .resource = ExecResource::kGpu,
                       .invocations = 2,
                       .items = p_blocks + result.stats.delta_points,
                       .ops = p_blocks * 8 +
                              result.stats.delta_points * 4,
                       .bytes = result.stats.delta_points * 12 +
                                p_blocks * 8});
        recordKernel(recorder,
                     KernelWork{.name = "bm.reuse_copy",
                                .resource = ExecResource::kGpu,
                                .invocations = 1,
                                .items = reused_points,
                                .ops = reused_points * 2,
                                .bytes = reused_points * 6});
    }

    // Encode the deltas as "new attributes" (paper Sec. VI-B).
    std::vector<std::uint8_t> delta_payload;
    if (result.stats.delta_points > 0) {
        auto encoded =
            encodeSegmentAttr(deltas, config.delta_codec, recorder);
        if (!encoded)
            return encoded.status();
        delta_payload = encoded.takeValue();
    }

    // Assemble the stream.
    TracedStage stage(recorder, "inter.assemble");
    BitWriter writer;
    writer.writeBits(static_cast<std::uint8_t>(kMagic[0]), 8);
    writer.writeBits(static_cast<std::uint8_t>(kMagic[1]), 8);
    writer.writeBits(static_cast<std::uint8_t>(kMagic[2]), 8);
    writer.writeVarint(np);
    writer.writeVarint(p_blocks);
    writer.writeVarint(k);
    writer.writeVarint(config.candidate_window);
    const int ptr_bits =
        std::max(1, bitWidth(config.candidate_window - 1));
    for (std::size_t pb = 0; pb < p_blocks; ++pb) {
        writer.writeBits(reuse_flag[pb], 1);
        writer.writeBits(best_offset[pb], ptr_bits);
    }
    writer.writeVarint(delta_payload.size());
    writer.writeBytes(delta_payload.data(), delta_payload.size());
    result.payload = writer.take();
    return result;
}

Status
decodeInterAttrInto(const std::vector<std::uint8_t> &payload,
                    const VoxelCloud &i_reference,
                    VoxelCloud &p_cloud, WorkRecorder *recorder)
{
    const std::size_t np = p_cloud.size();
    const std::size_t ni = i_reference.size();
    if (np == 0 || ni == 0)
        return invalidArgument("decodeInterAttrInto: empty cloud");

    BitReader reader(payload);
    if (reader.readBits(8) != 'I' || reader.readBits(8) != 'N' ||
        reader.readBits(8) != 'T') {
        return corruptBitstream("inter payload: bad magic");
    }
    const std::size_t n_stored =
        static_cast<std::size_t>(reader.readVarint());
    const std::size_t p_blocks =
        static_cast<std::size_t>(reader.readVarint());
    const std::size_t k =
        static_cast<std::size_t>(reader.readVarint());
    const std::size_t window_size =
        static_cast<std::size_t>(reader.readVarint());
    if (reader.overrun() || p_blocks == 0 || k == 0 ||
        window_size == 0)
        return corruptBitstream("inter payload: bad header");
    if (n_stored != np)
        return corruptBitstream(
            "inter payload: point count mismatch with geometry");

    const std::size_t i_blocks = (ni + k - 1) / k;
    const int ptr_bits = std::max(
        1, bitWidth(static_cast<std::uint64_t>(window_size) - 1));

    std::vector<std::uint8_t> reuse_flag(p_blocks);
    std::vector<std::uint32_t> best_offset(p_blocks);
    for (std::size_t pb = 0; pb < p_blocks; ++pb) {
        reuse_flag[pb] =
            static_cast<std::uint8_t>(reader.readBits(1));
        best_offset[pb] =
            static_cast<std::uint32_t>(reader.readBits(ptr_bits));
    }
    const std::size_t delta_size =
        static_cast<std::size_t>(reader.readVarint());
    reader.alignToByte();
    if (reader.overrun() ||
        reader.byteOffset() + delta_size > payload.size())
        return corruptBitstream("inter payload: truncated");

    AttrChannels deltas;
    if (delta_size > 0) {
        std::vector<std::uint8_t> delta_payload(
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            delta_size));
        auto decoded = decodeSegmentAttr(delta_payload, recorder);
        if (!decoded)
            return decoded.status();
        deltas = decoded.takeValue();
    }

    TracedStage stage(recorder, "interdec.reconstruct");
    std::size_t delta_cursor = 0;
    for (std::size_t pb = 0; pb < p_blocks; ++pb) {
        const std::size_t p_begin = pb * k;
        const std::size_t p_end = std::min(np, p_begin + k);
        if (p_begin >= np)
            return corruptBitstream(
                "inter payload: block out of range");
        const Window window = candidateWindow(
            pb, p_blocks, i_blocks, window_size);
        const std::size_t ib = window.start + best_offset[pb];
        if (ib >= i_blocks)
            return corruptBitstream(
                "inter payload: match pointer out of range");
        const std::size_t i_begin = ib * k;
        const std::size_t i_last = std::min(ni, i_begin + k) - 1;
        for (std::size_t j = 0; j < p_end - p_begin; ++j) {
            const std::size_t src = std::min(i_begin + j, i_last);
            std::int32_t r = i_reference.r()[src];
            std::int32_t g = i_reference.g()[src];
            std::int32_t b = i_reference.b()[src];
            if (!reuse_flag[pb]) {
                if (delta_cursor >= deltas[0].size())
                    return corruptBitstream(
                        "inter payload: delta stream exhausted");
                r += deltas[0][delta_cursor];
                g += deltas[1][delta_cursor];
                b += deltas[2][delta_cursor];
                ++delta_cursor;
            }
            p_cloud.mutableR()[p_begin + j] =
                static_cast<std::uint8_t>(std::clamp(r, 0, 255));
            p_cloud.mutableG()[p_begin + j] =
                static_cast<std::uint8_t>(std::clamp(g, 0, 255));
            p_cloud.mutableB()[p_begin + j] =
                static_cast<std::uint8_t>(std::clamp(b, 0, 255));
        }
    }
    recordKernel(recorder,
                 KernelWork{.name = "interdec.reconstruct",
                            .resource = ExecResource::kGpu,
                            .invocations = 1,
                            .items = np,
                            .ops = np * 8,
                            .bytes = np * 12});
    return Status::ok();
}

void
concealAttrFromReference(const VoxelCloud &reference,
                         VoxelCloud &cloud)
{
    const std::size_t n = cloud.size();
    if (reference.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            cloud.setColor(i, Color{128, 128, 128});
        return;
    }
    // Both clouds are Morton-sorted, so the nearest voxel *in sorted
    // order* is spatially close with high probability — the same
    // locality the block matcher's candidate window exploits. Binary
    // search per point keeps this O(n log m) with no scratch state.
    std::vector<std::uint64_t> ref_codes(reference.size());
    mortonEncodeBatch(reference.x().data(), reference.y().data(),
                      reference.z().data(), reference.size(),
                      ref_codes.data());
    std::vector<std::uint64_t> codes(n);
    mortonEncodeBatch(cloud.x().data(), cloud.y().data(),
                      cloud.z().data(), n, codes.data());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t code = codes[i];
        const auto it = std::lower_bound(ref_codes.begin(),
                                         ref_codes.end(), code);
        std::size_t best =
            it == ref_codes.end()
                ? ref_codes.size() - 1
                : static_cast<std::size_t>(it -
                                           ref_codes.begin());
        if (best > 0 && (it == ref_codes.end() ||
                         code - ref_codes[best - 1] <
                             ref_codes[best] - code))
            --best;
        cloud.setColor(i, reference.color(best));
    }
}

}  // namespace edgepcc
