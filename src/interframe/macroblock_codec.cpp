#include "edgepcc/interframe/macroblock_codec.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "edgepcc/common/check.h"
#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/entropy/range_coder.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {

namespace {

/** Contiguous run of points sharing one macro-block cell. */
struct MbRun {
    std::uint64_t cell = 0;
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/**
 * Splits a Morton-sorted cloud into macro-block runs. Because the
 * cell code is a prefix of the point's Morton code, cells are
 * contiguous in sorted order.
 */
std::vector<MbRun>
buildRuns(const VoxelCloud &cloud, int mb_bits)
{
    std::vector<MbRun> runs;
    const std::size_t n = cloud.size();
    const int shift = 3 * mb_bits;
    std::uint64_t prev_cell = 0;
    // Batch-encode in stack tiles; run building stays scalar (it is
    // a sequential dependence on prev_cell).
    constexpr std::size_t kTile = 512;
    std::uint64_t tile[kTile];
    for (std::size_t base = 0; base < n; base += kTile) {
        const std::size_t count = std::min(kTile, n - base);
        mortonEncodeBatch(cloud.x().data() + base,
                          cloud.y().data() + base,
                          cloud.z().data() + base, count, tile);
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t i = base + k;
            const std::uint64_t cell = tile[k] >> shift;
            if (runs.empty() || cell != prev_cell) {
                runs.push_back(MbRun{cell, i, i + 1});
                prev_cell = cell;
            } else {
                runs.back().end = i + 1;
            }
        }
    }
    return runs;
}

/** Integer translation estimated by the ICP-style alignment. */
struct Translation {
    std::int32_t dx = 0;
    std::int32_t dy = 0;
    std::int32_t dz = 0;
};

/**
 * Nearest point of `i_run` to the (translated) P point, brute force
 * within the block, squared-distance metric. Deterministic tie-break
 * on the lowest index.
 */
std::size_t
nearestInRun(const VoxelCloud &i_cloud, const MbRun &i_run,
             std::int64_t px, std::int64_t py, std::int64_t pz)
{
    std::size_t best = i_run.begin;
    std::int64_t best_d2 = -1;
    for (std::size_t j = i_run.begin; j < i_run.end; ++j) {
        const std::int64_t dx = px - i_cloud.x()[j];
        const std::int64_t dy = py - i_cloud.y()[j];
        const std::int64_t dz = pz - i_cloud.z()[j];
        const std::int64_t d2 = dx * dx + dy * dy + dz * dz;
        if (best_d2 < 0 || d2 < best_d2) {
            best_d2 = d2;
            best = j;
        }
    }
    return best;
}

constexpr std::int32_t kMaxTranslation = 127;

}  // namespace

Expected<MacroBlockEncoded>
encodeMacroBlockAttr(const VoxelCloud &p_sorted,
                     const VoxelCloud &i_reference,
                     const MacroBlockConfig &config,
                     WorkRecorder *recorder)
{
    if (p_sorted.empty() || i_reference.empty())
        return invalidArgument("encodeMacroBlockAttr: empty cloud");
    if (config.mb_bits < 1 || config.mb_bits >= p_sorted.gridBits())
        return invalidArgument(
            "encodeMacroBlockAttr: mb_bits out of range");

    MacroBlockEncoded result;

    // ---- Macro-block "tree" construction (both frames) ------------
    std::vector<MbRun> p_runs;
    std::vector<MbRun> i_runs;
    std::unordered_map<std::uint64_t, std::size_t> i_index;
    {
        ScopedStage stage(recorder, "inter.mb_tree");
        p_runs = buildRuns(p_sorted, config.mb_bits);
        i_runs = buildRuns(i_reference, config.mb_bits);
        i_index.reserve(i_runs.size());
        for (std::size_t r = 0; r < i_runs.size(); ++r)
            i_index.emplace(i_runs[r].cell, r);
        recordKernel(
            recorder,
            KernelWork{.name = "mb.tree_build",
                       .resource = ExecResource::kCpuParallel,
                       .invocations = 2,
                       .items = p_sorted.size() + i_reference.size(),
                       .ops = (p_sorted.size() +
                               i_reference.size()) *
                              static_cast<std::uint64_t>(
                                  p_sorted.gridBits()),
                       .bytes = (p_sorted.size() +
                                 i_reference.size()) *
                                14});
    }
    result.stats.p_blocks =
        static_cast<std::uint32_t>(p_runs.size());

    // ---- Per-block search + ICP alignment --------------------------
    std::vector<std::uint8_t> reuse_flag(p_runs.size(), 0);
    std::vector<Translation> translations(p_runs.size());
    std::vector<std::uint8_t> raw_attrs;

    {
        ScopedStage stage(recorder, "inter.mb_match");
        for (std::size_t pb = 0; pb < p_runs.size(); ++pb) {
            const MbRun &p_run = p_runs[pb];
            const auto it = i_index.find(p_run.cell);
            bool reused = false;
            if (it != i_index.end()) {
                ++result.stats.matched_blocks;
                const MbRun &i_run = i_runs[it->second];

                // ICP-lite: iterate translation = mean offset of
                // nearest-neighbour correspondences.
                double tx = 0.0, ty = 0.0, tz = 0.0;
                for (int iter = 0; iter < config.icp_iterations;
                     ++iter) {
                    double sx = 0.0, sy = 0.0, sz = 0.0;
                    for (std::size_t i = p_run.begin;
                         i < p_run.end; ++i) {
                        const std::size_t nn = nearestInRun(
                            i_reference, i_run,
                            static_cast<std::int64_t>(std::llround(
                                p_sorted.x()[i] - tx)),
                            static_cast<std::int64_t>(std::llround(
                                p_sorted.y()[i] - ty)),
                            static_cast<std::int64_t>(std::llround(
                                p_sorted.z()[i] - tz)));
                        sx += p_sorted.x()[i] -
                              static_cast<double>(
                                  i_reference.x()[nn]);
                        sy += p_sorted.y()[i] -
                              static_cast<double>(
                                  i_reference.y()[nn]);
                        sz += p_sorted.z()[i] -
                              static_cast<double>(
                                  i_reference.z()[nn]);
                        result.stats.icp_point_ops +=
                            i_run.size();
                    }
                    const double inv_n =
                        1.0 / static_cast<double>(p_run.size());
                    tx = sx * inv_n;
                    ty = sy * inv_n;
                    tz = sz * inv_n;
                }
                Translation t;
                t.dx = std::clamp(
                    static_cast<std::int32_t>(std::llround(tx)),
                    -kMaxTranslation, kMaxTranslation);
                t.dy = std::clamp(
                    static_cast<std::int32_t>(std::llround(ty)),
                    -kMaxTranslation, kMaxTranslation);
                t.dz = std::clamp(
                    static_cast<std::int32_t>(std::llround(tz)),
                    -kMaxTranslation, kMaxTranslation);
                translations[pb] = t;

                // Evaluate the reuse decision with the quantized
                // translation (what the decoder will apply).
                std::uint64_t attr_d2 = 0;
                for (std::size_t i = p_run.begin; i < p_run.end;
                     ++i) {
                    const std::size_t nn = nearestInRun(
                        i_reference, i_run,
                        static_cast<std::int64_t>(
                            p_sorted.x()[i]) -
                            t.dx,
                        static_cast<std::int64_t>(
                            p_sorted.y()[i]) -
                            t.dy,
                        static_cast<std::int64_t>(
                            p_sorted.z()[i]) -
                            t.dz);
                    const std::int32_t dr =
                        static_cast<std::int32_t>(
                            p_sorted.r()[i]) -
                        i_reference.r()[nn];
                    const std::int32_t dg =
                        static_cast<std::int32_t>(
                            p_sorted.g()[i]) -
                        i_reference.g()[nn];
                    const std::int32_t db =
                        static_cast<std::int32_t>(
                            p_sorted.b()[i]) -
                        i_reference.b()[nn];
                    attr_d2 += static_cast<std::uint64_t>(
                        dr * dr + dg * dg + db * db);
                    result.stats.icp_point_ops += i_run.size();
                }
                const double per_point =
                    static_cast<double>(attr_d2) /
                    static_cast<double>(p_run.size());
                reused = per_point <= config.reuse_threshold;
            }
            reuse_flag[pb] = reused ? 1 : 0;
            if (reused) {
                ++result.stats.reused_blocks;
            } else {
                for (std::size_t i = p_run.begin; i < p_run.end;
                     ++i)
                    raw_attrs.push_back(p_sorted.r()[i]);
                for (std::size_t i = p_run.begin; i < p_run.end;
                     ++i)
                    raw_attrs.push_back(p_sorted.g()[i]);
                for (std::size_t i = p_run.begin; i < p_run.end;
                     ++i)
                    raw_attrs.push_back(p_sorted.b()[i]);
            }
        }

        // The reference codec traverses the whole I-MB tree for
        // every P block; the device model charges that quadratic
        // search even though this implementation uses a hash.
        recordKernel(
            recorder,
            KernelWork{.name = "mb.tree_search",
                       .resource = ExecResource::kCpuParallel,
                       .invocations = p_runs.size(),
                       .items = p_runs.size() * i_runs.size(),
                       .ops = p_runs.size() * i_runs.size(),
                       .bytes = p_runs.size() * i_runs.size() * 8});
        recordKernel(
            recorder,
            KernelWork{.name = "mb.icp",
                       .resource = ExecResource::kCpuParallel,
                       .invocations =
                           static_cast<std::uint64_t>(
                               config.icp_iterations) *
                           result.stats.matched_blocks,
                       .items = result.stats.icp_point_ops,
                       .ops = result.stats.icp_point_ops * 8,
                       .bytes = result.stats.icp_point_ops * 6});
    }

    // ---- Assemble ---------------------------------------------------
    ScopedStage stage(recorder, "inter.mb_assemble");
    const std::vector<std::uint8_t> packed =
        entropyCompress(raw_attrs);
    recordKernel(recorder,
                 KernelWork{.name = "mb.attr_entropy",
                            .resource = ExecResource::kCpuSequential,
                            .invocations = 1,
                            .items = raw_attrs.size(),
                            .ops = raw_attrs.size() * 24,
                            .bytes =
                                raw_attrs.size() + packed.size()});

    BitWriter writer;
    writer.writeBits('C', 8);
    writer.writeBits('W', 8);
    writer.writeBits('P', 8);
    writer.writeVarint(p_sorted.size());
    writer.writeVarint(static_cast<std::uint64_t>(config.mb_bits));
    writer.writeVarint(p_runs.size());
    for (std::size_t pb = 0; pb < p_runs.size(); ++pb) {
        writer.writeBits(reuse_flag[pb], 1);
        if (reuse_flag[pb]) {
            writer.writeSignedVarint(translations[pb].dx);
            writer.writeSignedVarint(translations[pb].dy);
            writer.writeSignedVarint(translations[pb].dz);
        }
    }
    writer.writeVarint(raw_attrs.size());
    writer.writeVarint(packed.size());
    writer.writeBytes(packed.data(), packed.size());
    result.payload = writer.take();
    return result;
}

Status
decodeMacroBlockAttrInto(const std::vector<std::uint8_t> &payload,
                         const VoxelCloud &i_reference,
                         VoxelCloud &p_cloud,
                         WorkRecorder *recorder)
{
    if (p_cloud.empty() || i_reference.empty())
        return invalidArgument(
            "decodeMacroBlockAttrInto: empty cloud");

    ScopedStage stage(recorder, "interdec.mb");

    BitReader reader(payload);
    if (reader.readBits(8) != 'C' || reader.readBits(8) != 'W' ||
        reader.readBits(8) != 'P') {
        return corruptBitstream("mb payload: bad magic");
    }
    const std::size_t n =
        static_cast<std::size_t>(reader.readVarint());
    const int mb_bits = static_cast<int>(reader.readVarint());
    const std::size_t num_blocks =
        static_cast<std::size_t>(reader.readVarint());
    EDGEPCC_CHECK_CORRUPT(!reader.overrun() && mb_bits >= 1 &&
                              mb_bits < p_cloud.gridBits(),
                          "mb payload: bad header");
    EDGEPCC_CHECK_CORRUPT(
        n == p_cloud.size(),
        "mb payload: point count mismatch with geometry");

    const std::vector<MbRun> p_runs = buildRuns(p_cloud, mb_bits);
    const std::vector<MbRun> i_runs =
        buildRuns(i_reference, mb_bits);
    if (p_runs.size() != num_blocks)
        return corruptBitstream(
            "mb payload: block structure mismatch");
    std::unordered_map<std::uint64_t, std::size_t> i_index;
    i_index.reserve(i_runs.size());
    for (std::size_t r = 0; r < i_runs.size(); ++r)
        i_index.emplace(i_runs[r].cell, r);

    std::vector<std::uint8_t> reuse_flag(num_blocks);
    std::vector<Translation> translations(num_blocks);
    for (std::size_t pb = 0; pb < num_blocks; ++pb) {
        reuse_flag[pb] =
            static_cast<std::uint8_t>(reader.readBits(1));
        if (reuse_flag[pb]) {
            const std::int64_t dx = reader.readSignedVarint();
            const std::int64_t dy = reader.readSignedVarint();
            const std::int64_t dz = reader.readSignedVarint();
            // The encoder clamps to +-kMaxTranslation; anything
            // wider is corruption, and unclamped values would
            // overflow the squared-distance terms in nearestInRun.
            EDGEPCC_CHECK_CORRUPT(
                std::abs(dx) <= kMaxTranslation &&
                    std::abs(dy) <= kMaxTranslation &&
                    std::abs(dz) <= kMaxTranslation,
                "mb payload: translation out of range");
            translations[pb].dx = static_cast<std::int32_t>(dx);
            translations[pb].dy = static_cast<std::int32_t>(dy);
            translations[pb].dz = static_cast<std::int32_t>(dz);
        }
    }
    const std::size_t raw_size =
        static_cast<std::size_t>(reader.readVarint());
    const std::size_t packed_size =
        static_cast<std::size_t>(reader.readVarint());
    reader.alignToByte();
    EDGEPCC_CHECK_CORRUPT(
        !reader.overrun() &&
            reader.byteOffset() + packed_size <= payload.size(),
        "mb payload: truncated");
    // Raw attributes are 3 bytes per point for non-reused blocks:
    // never more than 3n in a well-formed stream.
    EDGEPCC_CHECK_CORRUPT(raw_size <= 3 * n,
                          "mb payload: implausible raw size");
    std::vector<std::uint8_t> packed(
        payload.begin() +
            static_cast<std::ptrdiff_t>(reader.byteOffset()),
        payload.begin() +
            static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                        packed_size));
    auto raw = entropyDecompress(packed, raw_size);
    if (!raw)
        return raw.status();

    std::size_t raw_cursor = 0;
    for (std::size_t pb = 0; pb < num_blocks; ++pb) {
        const MbRun &p_run = p_runs[pb];
        if (reuse_flag[pb]) {
            const auto it = i_index.find(p_run.cell);
            if (it == i_index.end())
                return corruptBitstream(
                    "mb payload: reuse without matched block");
            const MbRun &i_run = i_runs[it->second];
            const Translation &t = translations[pb];
            for (std::size_t i = p_run.begin; i < p_run.end;
                 ++i) {
                const std::size_t nn = nearestInRun(
                    i_reference, i_run,
                    static_cast<std::int64_t>(p_cloud.x()[i]) -
                        t.dx,
                    static_cast<std::int64_t>(p_cloud.y()[i]) -
                        t.dy,
                    static_cast<std::int64_t>(p_cloud.z()[i]) -
                        t.dz);
                p_cloud.mutableR()[i] = i_reference.r()[nn];
                p_cloud.mutableG()[i] = i_reference.g()[nn];
                p_cloud.mutableB()[i] = i_reference.b()[nn];
            }
        } else {
            const std::size_t count = p_run.size();
            if (raw_cursor + 3 * count > raw->size())
                return corruptBitstream(
                    "mb payload: raw attribute underflow");
            for (std::size_t j = 0; j < count; ++j)
                p_cloud.mutableR()[p_run.begin + j] =
                    (*raw)[raw_cursor + j];
            for (std::size_t j = 0; j < count; ++j)
                p_cloud.mutableG()[p_run.begin + j] =
                    (*raw)[raw_cursor + count + j];
            for (std::size_t j = 0; j < count; ++j)
                p_cloud.mutableB()[p_run.begin + j] =
                    (*raw)[raw_cursor + 2 * count + j];
            raw_cursor += 3 * count;
        }
    }
    return Status::ok();
}

std::vector<std::uint8_t>
encodeRawEntropyAttr(const VoxelCloud &sorted_cloud,
                     WorkRecorder *recorder)
{
    ScopedStage stage(recorder, "attr.raw_entropy");
    const std::size_t n = sorted_cloud.size();
    BitWriter writer;
    writer.writeBits('R', 8);
    writer.writeBits('W', 8);
    writer.writeBits('A', 8);
    writer.writeVarint(n);
    const std::vector<std::uint8_t> *channels[3] = {
        &sorted_cloud.r(), &sorted_cloud.g(), &sorted_cloud.b()};
    for (const auto *channel : channels) {
        const std::vector<std::uint8_t> packed =
            entropyCompress(*channel);
        writer.writeVarint(packed.size());
        writer.writeBytes(packed.data(), packed.size());
    }
    recordKernel(recorder,
                 KernelWork{.name = "attr.raw_entropy",
                            .resource = ExecResource::kCpuSequential,
                            .invocations = 3,
                            .items = n * 3,
                            .ops = n * 3 * 24,
                            .bytes = n * 6});
    return writer.take();
}

Status
decodeRawEntropyAttrInto(const std::vector<std::uint8_t> &payload,
                         VoxelCloud &cloud, WorkRecorder *recorder)
{
    ScopedStage stage(recorder, "attrdec.raw_entropy");
    BitReader reader(payload);
    if (reader.readBits(8) != 'R' || reader.readBits(8) != 'W' ||
        reader.readBits(8) != 'A') {
        return corruptBitstream("raw attr payload: bad magic");
    }
    const std::size_t n =
        static_cast<std::size_t>(reader.readVarint());
    if (reader.overrun() || n != cloud.size())
        return corruptBitstream(
            "raw attr payload: point count mismatch");
    std::vector<std::uint8_t> *channels[3] = {
        &cloud.mutableR(), &cloud.mutableG(), &cloud.mutableB()};
    for (auto *channel : channels) {
        const std::size_t packed_size =
            static_cast<std::size_t>(reader.readVarint());
        reader.alignToByte();
        if (reader.overrun() ||
            reader.byteOffset() + packed_size > payload.size())
            return corruptBitstream("raw attr payload: truncated");
        std::vector<std::uint8_t> packed(
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            payload.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            packed_size));
        auto raw = entropyDecompress(packed, n);
        if (!raw)
            return raw.status();
        *channel = raw.takeValue();
        for (std::size_t k = 0; k < packed_size; ++k)
            reader.readBits(8);
    }
    return Status::ok();
}

}  // namespace edgepcc
