#include "edgepcc/stream/stream_file.h"

#include <cstring>
#include <fstream>

#include "edgepcc/common/trace.h"
#include "edgepcc/entropy/bitstream.h"

namespace edgepcc {

namespace {
constexpr char kMagic[4] = {'E', 'P', 'C', 'V'};
// Backstop against absurd headers from corrupt files.
constexpr std::uint64_t kMaxFrames = 1000000;
}  // namespace

std::vector<std::uint8_t>
packStream(const std::vector<std::vector<std::uint8_t>> &frames)
{
    BitWriter writer;
    for (const char c : kMagic)
        writer.writeBits(static_cast<std::uint8_t>(c), 8);
    writer.writeVarint(frames.size());
    for (const auto &frame : frames) {
        writer.writeVarint(frame.size());
        writer.writeBytes(frame.data(), frame.size());
    }
    return writer.take();
}

Expected<std::vector<std::vector<std::uint8_t>>>
unpackStream(const std::vector<std::uint8_t> &bytes)
{
    BitReader reader(bytes);
    for (const char c : kMagic) {
        if (reader.readBits(8) !=
            static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(c))) {
            return corruptBitstream("not an EPCV stream");
        }
    }
    const std::uint64_t count = reader.readVarint();
    if (reader.overrun() || count > kMaxFrames)
        return corruptBitstream("EPCV stream: bad frame count");
    std::vector<std::vector<std::uint8_t>> frames;
    frames.reserve(count);
    for (std::uint64_t f = 0; f < count; ++f) {
        const auto size =
            static_cast<std::size_t>(reader.readVarint());
        reader.alignToByte();
        if (reader.overrun() ||
            reader.byteOffset() + size > bytes.size())
            return corruptBitstream("EPCV stream: truncated frame");
        frames.emplace_back(
            bytes.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset()),
            bytes.begin() +
                static_cast<std::ptrdiff_t>(reader.byteOffset() +
                                            size));
        for (std::size_t k = 0; k < size; ++k)
            reader.readBits(8);
    }
    return frames;
}

Status
writeStreamFile(const std::string &path,
                const std::vector<std::vector<std::uint8_t>> &frames)
{
    ScopedTrace trace("stream.file.write");
    const std::vector<std::uint8_t> bytes = packStream(frames);
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return ioError("cannot open " + path + " for writing");
    file.write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file)
        return ioError("write failed for " + path);
    return Status::ok();
}

Expected<std::vector<std::vector<std::uint8_t>>>
readStreamFile(const std::string &path)
{
    ScopedTrace trace("stream.file.read");
    std::ifstream file(path,
                       std::ios::binary | std::ios::ate);
    if (!file)
        return ioError("cannot open " + path);
    const std::streamsize size = file.tellg();
    file.seekg(0);
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(size));
    if (!file.read(reinterpret_cast<char *>(bytes.data()), size))
        return ioError("read failed for " + path);
    return unpackStream(bytes);
}

}  // namespace edgepcc
