#include "edgepcc/stream/network_model.h"

#include <algorithm>

namespace edgepcc {

NetworkSpec
NetworkSpec::wifi()
{
    NetworkSpec spec;
    spec.name = "Wi-Fi (802.11ac)";
    spec.bandwidth_mbps = 200.0;
    spec.rtt_ms = 6.0;
    spec.packet_loss_rate = 0.005;
    spec.jitter_ms = 2.0;
    return spec;
}

NetworkSpec
NetworkSpec::lte()
{
    NetworkSpec spec;
    spec.name = "LTE uplink";
    spec.bandwidth_mbps = 25.0;
    spec.rtt_ms = 40.0;
    spec.packet_loss_rate = 0.02;
    spec.jitter_ms = 15.0;
    return spec;
}

NetworkSpec
NetworkSpec::fiveG()
{
    NetworkSpec spec;
    spec.name = "5G mid-band uplink";
    spec.bandwidth_mbps = 120.0;
    spec.rtt_ms = 15.0;
    spec.packet_loss_rate = 0.01;
    spec.jitter_ms = 5.0;
    return spec;
}

double
NetworkSpec::transferSeconds(std::uint64_t bytes) const
{
    // Expected transmissions per packet under independent loss is
    // the geometric mean 1/(1-p); clamp p so a misconfigured spec
    // degrades gracefully instead of dividing by ~zero.
    const double loss =
        std::clamp(packet_loss_rate, 0.0, 0.95);
    return latencySeconds() +
           serializationSeconds(bytes) / (1.0 - loss);
}

double
NetworkSpec::latencySeconds() const
{
    return (rtt_ms / 2.0 + jitter_ms) / 1e3;
}

double
NetworkSpec::serializationSeconds(std::uint64_t bytes) const
{
    const double wire_bits =
        static_cast<double>(bytes) * 8.0 / efficiency;
    return wire_bits / (bandwidth_mbps * 1e6);
}

}  // namespace edgepcc
