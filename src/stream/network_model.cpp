#include "edgepcc/stream/network_model.h"

namespace edgepcc {

NetworkSpec
NetworkSpec::wifi()
{
    NetworkSpec spec;
    spec.name = "Wi-Fi (802.11ac)";
    spec.bandwidth_mbps = 200.0;
    spec.rtt_ms = 6.0;
    return spec;
}

NetworkSpec
NetworkSpec::lte()
{
    NetworkSpec spec;
    spec.name = "LTE uplink";
    spec.bandwidth_mbps = 25.0;
    spec.rtt_ms = 40.0;
    return spec;
}

NetworkSpec
NetworkSpec::fiveG()
{
    NetworkSpec spec;
    spec.name = "5G mid-band uplink";
    spec.bandwidth_mbps = 120.0;
    spec.rtt_ms = 15.0;
    return spec;
}

double
NetworkSpec::transferSeconds(std::uint64_t bytes) const
{
    const double wire_bits =
        static_cast<double>(bytes) * 8.0 / efficiency;
    return rtt_ms / 2.0 / 1e3 +
           wire_bits / (bandwidth_mbps * 1e6);
}

}  // namespace edgepcc
