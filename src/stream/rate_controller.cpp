#include "edgepcc/stream/rate_controller.h"

#include <algorithm>
#include <cmath>

namespace edgepcc {

ReuseRateController::ReuseRateController(RateControllerConfig config)
    : config_(config), threshold_(config.initial_threshold)
{
    threshold_ = std::clamp(threshold_, config_.min_threshold,
                            config_.max_threshold);
}

void
ReuseRateController::onFrame(Frame::Type type,
                             std::uint64_t encoded_bytes)
{
    ++frames_;
    if (type != Frame::Type::kPredicted)
        return;
    if (config_.target_bytes_per_frame == 0)
        return;

    // Multiplicative update: overshooting the budget raises the
    // threshold (more reuse, smaller frames), undershooting lowers
    // it (better quality). The log keeps the step symmetric in
    // ratio space.
    const double ratio =
        static_cast<double>(encoded_bytes) /
        static_cast<double>(config_.target_bytes_per_frame);
    const double step =
        std::exp(config_.gain * std::log(std::max(ratio, 1e-6)));
    threshold_ = std::clamp(threshold_ * step,
                            config_.min_threshold,
                            config_.max_threshold);
}

AdaptiveGopController::AdaptiveGopController(
    AdaptiveGopConfig config, int initial_gop_size)
    : config_(config),
      gop_size_(std::clamp(initial_gop_size,
                           config.min_gop_size,
                           config.max_gop_size))
{
}

void
AdaptiveGopController::onFrameDelivery(bool delivered)
{
    MutexLock lock(mutex_);
    ewma_loss_ = (1.0 - config_.ewma_alpha) * ewma_loss_ +
                 config_.ewma_alpha * (delivered ? 0.0 : 1.0);
    if (!delivered) {
        clean_streak_ = 0;
        if (ewma_loss_ > config_.high_loss) {
            gop_size_ = std::max(config_.min_gop_size,
                                 gop_size_ / 2);
        }
        return;
    }
    ++clean_streak_;
    if (ewma_loss_ < config_.low_loss &&
        clean_streak_ >= config_.grow_after_clean &&
        gop_size_ < config_.max_gop_size) {
        ++gop_size_;
        clean_streak_ = 0;
    }
}

AdaptiveFecController::AdaptiveFecController(
    AdaptiveFecConfig config, int initial_group_size)
    : config_(config),
      group_size_(std::clamp(initial_group_size,
                             config.min_group_size,
                             config.max_group_size))
{
}

void
AdaptiveFecController::onLossEstimate(double ewma_loss,
                                      bool delivered)
{
    MutexLock lock(mutex_);
    if (!delivered) {
        clean_streak_ = 0;
        if (ewma_loss > config_.high_loss) {
            group_size_ = std::max(config_.min_group_size,
                                   group_size_ / 2);
        }
        return;
    }
    ++clean_streak_;
    if (ewma_loss < config_.low_loss &&
        clean_streak_ >= config_.grow_after_clean &&
        group_size_ < config_.max_group_size) {
        ++group_size_;
        clean_streak_ = 0;
    }
}

}  // namespace edgepcc
