#include "edgepcc/stream/lossy_channel.h"

#include <algorithm>
#include <utility>

#include "edgepcc/stream/chunk_stream.h"

namespace edgepcc {

ChannelSpec
ChannelSpec::clean()
{
    return ChannelSpec{};
}

ChannelSpec
ChannelSpec::lossy(double loss_rate, std::uint64_t seed)
{
    ChannelSpec spec;
    const double each = std::clamp(loss_rate, 0.0, 1.0) / 3.0;
    spec.drop_rate = each;
    spec.truncate_rate = each;
    spec.bit_flip_rate = each;
    spec.seed = seed;
    return spec;
}

ChannelSpec
ChannelSpec::bursty(double burst_rate, int burst_length,
                    std::uint64_t seed)
{
    ChannelSpec spec;
    spec.burst_rate = std::clamp(burst_rate, 0.0, 1.0);
    spec.burst_length = std::max(burst_length, 1);
    spec.seed = seed;
    return spec;
}

ChannelSpec
ChannelSpec::fromNetwork(const NetworkSpec &network,
                         std::uint64_t seed)
{
    ChannelSpec spec;
    // A lost packet usually takes the whole chunk with it; bit-level
    // damage that survives link CRCs is an order rarer. Jitter shows
    // up as reordering once it exceeds a packet serialization time.
    spec.drop_rate = network.packet_loss_rate * 0.8;
    spec.truncate_rate = network.packet_loss_rate * 0.1;
    spec.bit_flip_rate = network.packet_loss_rate * 0.1;
    spec.reorder_rate =
        network.jitter_ms > 0.0
            ? std::min(0.25, network.jitter_ms / 100.0)
            : 0.0;
    spec.seed = seed;
    return spec;
}

LossyChannel::LossyChannel(ChannelSpec spec)
    : spec_(spec), rng_(spec.seed)
{
}

bool
LossyChannel::damage(std::vector<std::uint8_t> &chunk)
{
    // Correlated burst loss first: once a burst starts it swallows
    // whole chunks unconditionally. The extra RNG draw only happens
    // when bursts are configured, so existing seeded sequences are
    // unchanged for burst-free specs.
    if (spec_.burst_rate > 0.0) {
        if (burst_remaining_ == 0 &&
            rng_.uniform() < spec_.burst_rate) {
            burst_remaining_ = std::max(spec_.burst_length, 1);
            ++stats_.bursts;
        }
        if (burst_remaining_ > 0) {
            --burst_remaining_;
            ++stats_.dropped;
            ++stats_.burst_dropped;
            return false;
        }
    }
    if (rng_.uniform() < spec_.drop_rate) {
        ++stats_.dropped;
        return false;
    }
    if (!chunk.empty() &&
        rng_.uniform() < spec_.truncate_rate) {
        const std::size_t keep = static_cast<std::size_t>(
            rng_.bounded(chunk.size()));
        chunk.resize(keep);
        ++stats_.truncated;
    }
    if (!chunk.empty() &&
        rng_.uniform() < spec_.bit_flip_rate) {
        const std::size_t bit = static_cast<std::size_t>(
            rng_.bounded(chunk.size() * 8));
        chunk[bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        ++stats_.bit_flipped;
    }
    return true;
}

std::vector<std::vector<std::uint8_t>>
LossyChannel::transmit(const std::vector<std::uint8_t> &chunk)
{
    ++stats_.chunks_in;
    std::vector<std::vector<std::uint8_t>> arrived;

    // Release held chunks whose delay expired.
    for (auto it = held_.begin(); it != held_.end();) {
        if (--it->first <= 0) {
            arrived.push_back(std::move(it->second));
            it = held_.erase(it);
        } else {
            ++it;
        }
    }

    std::vector<std::uint8_t> copy = chunk;
    if (damage(copy)) {
        const bool duplicate =
            rng_.uniform() < spec_.duplicate_rate;
        if (rng_.uniform() < spec_.reorder_rate &&
            spec_.reorder_window > 0) {
            const int delay =
                1 + static_cast<int>(rng_.bounded(
                        static_cast<std::uint64_t>(
                            spec_.reorder_window)));
            held_.emplace_back(delay, std::move(copy));
            ++stats_.reordered;
            if (duplicate) {
                // The duplicate still arrives in order.
                arrived.push_back(chunk);
                ++stats_.duplicated;
            }
        } else {
            if (duplicate) {
                arrived.push_back(copy);
                ++stats_.duplicated;
            }
            arrived.push_back(std::move(copy));
        }
    }
    stats_.chunks_out += arrived.size();
    return arrived;
}

std::vector<std::vector<std::uint8_t>>
LossyChannel::flush()
{
    std::vector<std::vector<std::uint8_t>> arrived;
    arrived.reserve(held_.size());
    for (auto &held : held_)
        arrived.push_back(std::move(held.second));
    held_.clear();
    stats_.chunks_out += arrived.size();
    return arrived;
}

std::vector<std::uint8_t>
LossyChannel::transmitAll(
    const std::vector<std::vector<std::uint8_t>> &chunks)
{
    std::vector<std::vector<std::uint8_t>> delivered;
    for (const auto &chunk : chunks) {
        for (auto &out : transmit(chunk))
            delivered.push_back(std::move(out));
    }
    for (auto &out : flush())
        delivered.push_back(std::move(out));
    return concatWire(delivered);
}

}  // namespace edgepcc
