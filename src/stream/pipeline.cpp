#include "edgepcc/stream/pipeline.h"

#include "edgepcc/common/trace.h"

namespace edgepcc {

double
PipelineReport::meanTotalSeconds() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameLatency &frame : frames)
        sum += frame.total();
    return sum / static_cast<double>(frames.size());
}

double
PipelineReport::pipelinedFps() const
{
    if (frames.empty())
        return 0.0;
    double worst = 0.0;
    for (const FrameLatency &frame : frames)
        worst = std::max(worst, frame.bottleneckSeconds());
    return worst > 0.0 ? 1.0 / worst : 0.0;
}

double
PipelineReport::meanBitsPerFrame() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameLatency &frame : frames)
        sum += static_cast<double>(frame.bytes) * 8.0;
    return sum / static_cast<double>(frames.size());
}

Expected<PipelineReport>
evaluatePipeline(const std::vector<VoxelCloud> &frames,
                 const CodecConfig &codec,
                 const PipelineConfig &config)
{
    if (frames.empty())
        return invalidArgument("evaluatePipeline: no frames");

    const EdgeDeviceModel encoder_model(config.encoder_device);
    const EdgeDeviceModel decoder_model(config.decoder_device);
    VideoEncoder encoder(codec);
    VideoDecoder decoder;

    PipelineReport report;
    report.frames.reserve(frames.size());

    ScopedTrace run_trace("pipeline.evaluate");
    for (const VoxelCloud &frame : frames) {
        ScopedTrace frame_trace("pipeline.frame");
        auto encoded = encoder.encode(frame);
        if (!encoded)
            return encoded.status();
        auto decoded = decoder.decode(encoded->bitstream);
        if (!decoded)
            return decoded.status();

        FrameLatency latency;
        latency.type = encoded->stats.type;
        latency.capture_s = config.capture_seconds;
        latency.encode_s =
            encoder_model.evaluate(encoded->profile)
                .modelSeconds();
        latency.bytes = encoded->bitstream.size();
        latency.transmit_s =
            config.network.transferSeconds(latency.bytes);
        latency.decode_s =
            decoder_model.evaluate(decoded->profile)
                .modelSeconds();
        latency.render_s = config.render_seconds;
        report.frames.push_back(latency);
    }
    return report;
}

}  // namespace edgepcc
