#include "edgepcc/stream/pipeline.h"

#include "edgepcc/common/trace.h"

namespace edgepcc {

PipelineConfig::PipelineConfig() = default;

double
PipelineReport::meanTotalSeconds() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameLatency &frame : frames)
        sum += frame.total();
    return sum / static_cast<double>(frames.size());
}

double
PipelineReport::pipelinedFps() const
{
    if (frames.empty())
        return 0.0;
    double worst = 0.0;
    for (const FrameLatency &frame : frames)
        worst = std::max(worst, frame.bottleneckSeconds());
    return worst > 0.0 ? 1.0 / worst : 0.0;
}

double
PipelineReport::meanBitsPerFrame() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameLatency &frame : frames)
        sum += static_cast<double>(frame.bytes) * 8.0;
    return sum / static_cast<double>(frames.size());
}

double
PipelineReport::meanRecoverySeconds() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameLatency &frame : frames)
        sum += frame.recovery_s;
    return sum / static_cast<double>(frames.size());
}

namespace {

/**
 * Transport-mode evaluation: run the full resilient session
 * (slicing + FEC + NACK over a fault-injection channel derived
 * from the network spec) and price each frame's latency from the
 * session's actual accounting. Serialization uses the frame's real
 * wire bytes — parity and resends included — so loss is never
 * double-counted; recovery adds the modelled backoff plus one RTT
 * per NACK round-trip.
 */
Expected<PipelineReport>
evaluateTransport(const std::vector<VoxelCloud> &frames,
                  const CodecConfig &codec,
                  const PipelineConfig &config)
{
    const EdgeDeviceModel encoder_model(config.encoder_device);
    const EdgeDeviceModel decoder_model(config.decoder_device);

    SessionConfig session = config.session;
    if (!config.use_session_channel)
        session.channel = ChannelSpec::fromNetwork(
            config.network, config.transport_seed);
    // The deadline ladder judges encode latency on the same device
    // the pipeline prices the encode stage with.
    if (session.overload.enabled)
        session.overload.device = config.encoder_device;
    StreamSession stream(codec, session);
    auto run = stream.run(frames);
    if (!run)
        return run.status();

    PipelineReport report;
    report.transport = true;
    report.session = run->stats;
    report.wire = run->wire;
    report.fec = run->fec;
    report.overload = run->overload;
    report.frames.reserve(run->frames.size());

    const double rtt_s = config.network.rtt_ms / 1e3;
    for (const SessionFrame &frame : run->frames) {
        FrameLatency latency;
        latency.type = frame.type;
        latency.outcome = frame.outcome;
        latency.retransmits = frame.retransmits;
        latency.capture_s = config.capture_seconds;
        latency.encode_s =
            encoder_model.evaluate(frame.encode_profile)
                .modelSeconds();
        // Under the overload ladder the effective encode latency
        // (LoadSpec-scaled) is the honest number.
        if (run->overload.enabled &&
            frame.frame_id < run->overload.ladder.size())
            latency.encode_s =
                run->overload.ladder[frame.frame_id].encode_s;
        latency.bytes = frame.payload_bytes;
        latency.wire_bytes = frame.wire_bytes;
        latency.transmit_s =
            config.network.latencySeconds() +
            config.network.serializationSeconds(
                frame.wire_bytes);
        latency.recovery_s =
            frame.backoff_s +
            static_cast<double>(frame.nack_rounds) * rtt_s;
        latency.decode_s =
            decoder_model.evaluate(frame.decode_profile)
                .modelSeconds();
        latency.render_s = config.render_seconds;
        report.frames.push_back(latency);
    }
    return report;
}

}  // namespace

Expected<PipelineReport>
evaluatePipeline(const std::vector<VoxelCloud> &frames,
                 const CodecConfig &codec,
                 const PipelineConfig &config)
{
    if (frames.empty())
        return invalidArgument("evaluatePipeline: no frames");

    if (config.transport) {
        ScopedTrace trace("pipeline.evaluate_transport");
        return evaluateTransport(frames, codec, config);
    }

    const EdgeDeviceModel encoder_model(config.encoder_device);
    const EdgeDeviceModel decoder_model(config.decoder_device);
    VideoEncoder encoder(codec);
    VideoDecoder decoder;

    PipelineReport report;
    report.frames.reserve(frames.size());

    ScopedTrace run_trace("pipeline.evaluate");
    for (const VoxelCloud &frame : frames) {
        ScopedTrace frame_trace("pipeline.frame");
        auto encoded = encoder.encode(frame);
        if (!encoded)
            return encoded.status();
        auto decoded = decoder.decode(encoded->bitstream);
        if (!decoded)
            return decoded.status();

        FrameLatency latency;
        latency.type = encoded->stats.type;
        latency.capture_s = config.capture_seconds;
        latency.encode_s =
            encoder_model.evaluate(encoded->profile)
                .modelSeconds();
        latency.bytes = encoded->bitstream.size();
        latency.wire_bytes = latency.bytes;
        latency.transmit_s =
            config.network.transferSeconds(latency.bytes);
        latency.decode_s =
            decoder_model.evaluate(decoded->profile)
                .modelSeconds();
        latency.render_s = config.render_seconds;
        report.frames.push_back(latency);
    }
    return report;
}

}  // namespace edgepcc
