#include "edgepcc/stream/chunk_stream.h"

#include <cstring>

#include "edgepcc/common/crc32c.h"

namespace edgepcc {

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t value)
{
    out.push_back(static_cast<std::uint8_t>(value & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xffu));
}

std::uint32_t
getU32(const std::uint8_t *data)
{
    return static_cast<std::uint32_t>(data[0]) |
           static_cast<std::uint32_t>(data[1]) << 8 |
           static_cast<std::uint32_t>(data[2]) << 16 |
           static_cast<std::uint32_t>(data[3]) << 24;
}

/** Offset of the CRC field within the serialized header. */
constexpr std::size_t kCrcOffset = kChunkHeaderBytes - 4;

}  // namespace

std::vector<std::uint8_t>
serializeChunk(const ChunkHeader &header,
               const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(kChunkHeaderBytes + payload.size());
    for (const std::uint8_t byte : kChunkMarker)
        out.push_back(byte);
    putU32(out, header.sequence);
    putU32(out, header.frame_id);
    putU32(out, header.gop_id);
    out.push_back(header.frame_type == Frame::Type::kPredicted
                      ? 1u
                      : 0u);
    out.push_back(header.flags);
    putU32(out, static_cast<std::uint32_t>(payload.size()));

    // CRC over the header fields after the marker, then the payload.
    std::uint32_t crc =
        crc32c(out.data() + 4, out.size() - 4);
    crc = crc32c(payload.data(), payload.size(), crc);
    putU32(out, crc);

    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::vector<ParsedChunk>
scanWire(const std::vector<std::uint8_t> &wire,
         WireScanStats *stats)
{
    std::vector<ParsedChunk> chunks;
    WireScanStats local;
    WireScanStats &s = stats != nullptr ? *stats : local;
    s = WireScanStats{};
    s.bytes_scanned = wire.size();

    std::size_t pos = 0;
    while (pos + kChunkHeaderBytes <= wire.size()) {
        if (std::memcmp(wire.data() + pos, kChunkMarker, 4) != 0) {
            ++pos;
            ++s.bytes_skipped;
            continue;
        }
        const std::uint8_t *base = wire.data() + pos;
        const std::uint32_t payload_size = getU32(base + 18);
        if (payload_size > kMaxChunkPayload ||
            pos + kChunkHeaderBytes + payload_size > wire.size()) {
            // Header claims more bytes than exist: either a damaged
            // size field or a truncated tail chunk. Either way, skip
            // one byte and keep hunting for the next marker.
            ++s.chunks_truncated;
            ++pos;
            ++s.bytes_skipped;
            continue;
        }
        const std::uint32_t stored_crc = getU32(base + kCrcOffset);
        std::uint32_t crc = crc32c(base + 4, kCrcOffset - 4);
        crc = crc32c(base + kChunkHeaderBytes, payload_size, crc);
        if (crc != stored_crc) {
            ++s.chunks_bad_crc;
            ++pos;
            ++s.bytes_skipped;
            continue;
        }

        ParsedChunk chunk;
        chunk.header.sequence = getU32(base + 4);
        chunk.header.frame_id = getU32(base + 8);
        chunk.header.gop_id = getU32(base + 12);
        chunk.header.frame_type = base[16] == 1
                                      ? Frame::Type::kPredicted
                                      : Frame::Type::kIntra;
        chunk.header.flags = base[17];
        chunk.payload.assign(
            base + kChunkHeaderBytes,
            base + kChunkHeaderBytes + payload_size);
        chunks.push_back(std::move(chunk));
        ++s.chunks_ok;
        pos += kChunkHeaderBytes + payload_size;
    }
    // Trailing bytes too short to hold a header were never consumed.
    if (pos < wire.size())
        s.bytes_skipped += wire.size() - pos;
    return chunks;
}

std::vector<std::uint8_t>
concatWire(const std::vector<std::vector<std::uint8_t>> &chunks)
{
    std::size_t total = 0;
    for (const auto &chunk : chunks)
        total += chunk.size();
    std::vector<std::uint8_t> wire;
    wire.reserve(total);
    for (const auto &chunk : chunks)
        wire.insert(wire.end(), chunk.begin(), chunk.end());
    return wire;
}

}  // namespace edgepcc
