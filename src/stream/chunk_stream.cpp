#include "edgepcc/stream/chunk_stream.h"

#include <algorithm>
#include <cstring>

#include "edgepcc/common/crc32c.h"
#include "edgepcc/common/trace.h"
#include "edgepcc/platform/simd.h"

namespace edgepcc {

namespace {

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t value)
{
    out.push_back(static_cast<std::uint8_t>(value & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xffu));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t value)
{
    out.push_back(static_cast<std::uint8_t>(value & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xffu));
}

std::uint16_t
getU16(const std::uint8_t *data)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint32_t>(data[0]) |
        static_cast<std::uint32_t>(data[1]) << 8);
}

std::uint32_t
getU32(const std::uint8_t *data)
{
    return static_cast<std::uint32_t>(data[0]) |
           static_cast<std::uint32_t>(data[1]) << 8 |
           static_cast<std::uint32_t>(data[2]) << 16 |
           static_cast<std::uint32_t>(data[3]) << 24;
}

/**
 * XORs one chunk's FEC record into `acc` without materializing the
 * record: the 18-byte prefix is built on the stack, the payload is
 * XORed straight out of the view (SIMD-dispatched). Grows `acc`
 * with zero padding when the record is longer.
 */
void
xorRecordInto(std::vector<std::uint8_t> &acc,
              const ChunkHeader &header, ByteSpan payload)
{
    const std::size_t record_size =
        kFecRecordPrefixBytes + payload.size();
    if (record_size > acc.size())
        acc.resize(record_size, 0);
    std::uint8_t prefix[kFecRecordPrefixBytes];
    writeFecRecordPrefix(prefix, header, payload.size());
    xorBytes(acc.data(), prefix, kFecRecordPrefixBytes);
    if (!payload.empty())
        xorBytes(acc.data() + kFecRecordPrefixBytes,
                 payload.data(), payload.size());
}

}  // namespace

const char *
fecSchemeName(FecScheme scheme)
{
    return scheme == FecScheme::kReedSolomon ? "rs" : "xor";
}

void
writeFecRecordPrefix(std::uint8_t *out, const ChunkHeader &header,
                     std::size_t payload_size)
{
    const auto put32 = [&](std::size_t at, std::uint32_t value) {
        out[at] = static_cast<std::uint8_t>(value & 0xffu);
        out[at + 1] =
            static_cast<std::uint8_t>((value >> 8) & 0xffu);
        out[at + 2] =
            static_cast<std::uint8_t>((value >> 16) & 0xffu);
        out[at + 3] =
            static_cast<std::uint8_t>((value >> 24) & 0xffu);
    };
    put32(0, header.frame_id);
    put32(4, header.gop_id);
    out[8] = static_cast<std::uint8_t>(header.slice_index & 0xffu);
    out[9] = static_cast<std::uint8_t>(header.slice_index >> 8);
    out[10] = static_cast<std::uint8_t>(header.slice_count & 0xffu);
    out[11] = static_cast<std::uint8_t>(header.slice_count >> 8);
    out[12] = header.frame_type == Frame::Type::kPredicted ? 1u : 0u;
    out[13] = header.fec_seq;
    put32(14, static_cast<std::uint32_t>(payload_size));
}

std::optional<ParsedChunk>
recoverFecRecord(const std::vector<std::uint8_t> &record,
               std::uint8_t extra_flags)
{
    if (record.size() < kFecRecordPrefixBytes)
        return std::nullopt;
    const std::uint32_t payload_size = getU32(record.data() + 14);
    if (payload_size > kMaxChunkPayload ||
        kFecRecordPrefixBytes + payload_size > record.size())
        return std::nullopt;
    // A consistent reconstruction leaves the padding past the
    // record's true end all zero. Non-zero slack means the erasure
    // algebra was fed the wrong group composition (for XOR: two or
    // more chunks were missing) — reject instead of fabricating.
    for (std::size_t i = kFecRecordPrefixBytes + payload_size;
         i < record.size(); ++i) {
        if (record[i] != 0)
            return std::nullopt;
    }

    ParsedChunk chunk;
    chunk.header.frame_id = getU32(record.data());
    chunk.header.gop_id = getU32(record.data() + 4);
    chunk.header.slice_index = getU16(record.data() + 8);
    chunk.header.slice_count = getU16(record.data() + 10);
    chunk.header.frame_type = record[12] == 1
                                  ? Frame::Type::kPredicted
                                  : Frame::Type::kIntra;
    chunk.header.fec_seq = record[13];
    chunk.header.flags = static_cast<std::uint8_t>(
        kChunkFlagV2 | kChunkFlagFec | extra_flags);
    if (chunk.header.slice_count == 0)
        return std::nullopt;
    chunk.payload.assign(
        record.begin() +
            static_cast<std::ptrdiff_t>(kFecRecordPrefixBytes),
        record.begin() + static_cast<std::ptrdiff_t>(
                             kFecRecordPrefixBytes + payload_size));
    return chunk;
}

void
serializeChunkInto(const ChunkHeader &header, ByteSpan payload,
                   std::vector<std::uint8_t> &out)
{
    const bool v2 = header.isV2();
    out.clear();
    out.reserve(header.headerBytes() + payload.size());
    for (const std::uint8_t byte : kChunkMarker)
        out.push_back(byte);
    putU32(out, header.sequence);
    putU32(out, header.frame_id);
    putU32(out, header.gop_id);
    out.push_back(header.frame_type == Frame::Type::kPredicted
                      ? 1u
                      : 0u);
    out.push_back(v2 ? static_cast<std::uint8_t>(header.flags |
                                                 kChunkFlagV2)
                     : header.flags);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    if (v2) {
        putU16(out, header.slice_index);
        putU16(out, header.slice_count);
        putU16(out, header.fec_group);
        out.push_back(header.fec_seq);
        out.push_back(header.fec_group_size);
    }

    // CRC over the header fields after the marker, then the payload.
    std::uint32_t crc =
        crc32c(out.data() + 4, out.size() - 4);
    crc = crc32c(payload.data(), payload.size(), crc);
    putU32(out, crc);

    out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t>
serializeChunk(const ChunkHeader &header,
               const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    serializeChunkInto(header, ByteSpan(payload), out);
    return out;
}

std::vector<ParsedChunk>
scanWire(const std::vector<std::uint8_t> &wire,
         WireScanStats *stats)
{
    ScopedTrace trace("stream.scan_wire");
    std::vector<ParsedChunk> chunks;
    WireScanStats local;
    WireScanStats &s = stats != nullptr ? *stats : local;
    s = WireScanStats{};
    s.bytes_scanned = wire.size();

    std::size_t pos = 0;
    while (pos + kChunkHeaderBytes <= wire.size()) {
        if (std::memcmp(wire.data() + pos, kChunkMarker, 4) != 0) {
            ++pos;
            ++s.bytes_skipped;
            continue;
        }
        const std::uint8_t *base = wire.data() + pos;
        // The flags byte selects the header layout. A flipped V2
        // bit moves the CRC offset, so the CRC check below still
        // rejects the chunk — no false accept.
        const bool v2 = (base[17] & kChunkFlagV2) != 0;
        const std::size_t header_bytes =
            v2 ? kChunkHeaderBytesV2 : kChunkHeaderBytes;
        const std::uint32_t payload_size = getU32(base + 18);
        if (pos + header_bytes > wire.size() ||
            payload_size > kMaxChunkPayload ||
            pos + header_bytes + payload_size > wire.size()) {
            // Header claims more bytes than exist: either a damaged
            // size field or a truncated tail chunk. Either way, skip
            // one byte and keep hunting for the next marker.
            ++s.chunks_truncated;
            ++pos;
            ++s.bytes_skipped;
            continue;
        }
        const std::size_t crc_offset = header_bytes - 4;
        const std::uint32_t stored_crc = getU32(base + crc_offset);
        std::uint32_t crc = crc32c(base + 4, crc_offset - 4);
        crc = crc32c(base + header_bytes, payload_size, crc);
        if (crc != stored_crc) {
            ++s.chunks_bad_crc;
            ++pos;
            ++s.bytes_skipped;
            continue;
        }

        ParsedChunk chunk;
        chunk.header.sequence = getU32(base + 4);
        chunk.header.frame_id = getU32(base + 8);
        chunk.header.gop_id = getU32(base + 12);
        chunk.header.frame_type = base[16] == 1
                                      ? Frame::Type::kPredicted
                                      : Frame::Type::kIntra;
        chunk.header.flags = base[17];
        if (v2) {
            chunk.header.slice_index = getU16(base + 22);
            chunk.header.slice_count = getU16(base + 24);
            chunk.header.fec_group = getU16(base + 26);
            chunk.header.fec_seq = base[28];
            chunk.header.fec_group_size = base[29];
        }
        chunk.payload.assign(
            base + header_bytes,
            base + header_bytes + payload_size);
        chunks.push_back(std::move(chunk));
        ++s.chunks_ok;
        pos += header_bytes + payload_size;
    }
    // Trailing bytes too short to hold a header were never consumed.
    if (pos < wire.size())
        s.bytes_skipped += wire.size() - pos;
    return chunks;
}

std::vector<std::uint8_t>
concatWire(const std::vector<std::vector<std::uint8_t>> &chunks)
{
    std::size_t total = 0;
    for (const auto &chunk : chunks)
        total += chunk.size();
    std::vector<std::uint8_t> wire;
    wire.reserve(total);
    for (const auto &chunk : chunks)
        wire.insert(wire.end(), chunk.begin(), chunk.end());
    return wire;
}

std::vector<ChunkView>
sliceFramePayloadViews(const ChunkHeader &base, ByteSpan payload,
                       std::size_t mtu_payload)
{
    ScopedTrace trace("stream.slice");
    std::vector<ChunkView> slices;
    if (mtu_payload == 0 || payload.size() <= mtu_payload) {
        ChunkView whole;
        whole.header = base;
        whole.header.slice_index = 0;
        whole.header.slice_count = 1;
        whole.payload = payload;
        slices.push_back(whole);
        return slices;
    }
    // slice_count is u16: raise the slice size rather than overflow.
    std::size_t mtu = mtu_payload;
    const std::size_t max_slices = 0xffff;
    if ((payload.size() + mtu - 1) / mtu > max_slices)
        mtu = (payload.size() + max_slices - 1) / max_slices;
    const std::size_t count = (payload.size() + mtu - 1) / mtu;
    slices.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t begin = i * mtu;
        const std::size_t end =
            std::min(begin + mtu, payload.size());
        ChunkView slice;
        slice.header = base;
        slice.header.slice_index =
            static_cast<std::uint16_t>(i);
        slice.header.slice_count =
            static_cast<std::uint16_t>(count);
        slice.payload = payload.subspan(begin, end - begin);
        slices.push_back(slice);
    }
    return slices;
}

std::vector<ParsedChunk>
sliceFramePayload(const ChunkHeader &base,
                  const std::vector<std::uint8_t> &payload,
                  std::size_t mtu_payload)
{
    // Owning wrapper over the view-based slicer, kept for tests and
    // callers that outlive the source buffer.
    const std::vector<ChunkView> views =
        sliceFramePayloadViews(base, ByteSpan(payload),
                               mtu_payload);
    std::vector<ParsedChunk> slices;
    slices.reserve(views.size());
    for (const ChunkView &view : views) {
        ParsedChunk slice;
        slice.header = view.header;
        slice.payload.assign(view.payload.begin(),
                             view.payload.end());
        slices.push_back(std::move(slice));
    }
    return slices;
}

std::vector<std::uint8_t>
assembleSlices(
    const std::vector<const std::vector<std::uint8_t> *> &slices)
{
    std::size_t total = 0;
    for (const auto *slice : slices)
        total += slice->size();
    std::vector<std::uint8_t> payload;
    payload.reserve(total);
    for (const auto *slice : slices)
        payload.insert(payload.end(), slice->begin(),
                       slice->end());
    return payload;
}

void
buildFecParityInto(const std::vector<ChunkView> &group,
                   std::vector<std::uint8_t> &parity)
{
    parity.clear();
    for (const ChunkView &chunk : group)
        xorRecordInto(parity, chunk.header, chunk.payload);
}

std::vector<std::uint8_t>
buildFecParity(const std::vector<ParsedChunk> &group)
{
    std::vector<std::uint8_t> parity;
    for (const ParsedChunk &chunk : group)
        xorRecordInto(parity, chunk.header,
                      ByteSpan(chunk.payload));
    return parity;
}

std::optional<ParsedChunk>
recoverFecChunk(const std::vector<ParsedChunk> &received,
                const std::vector<std::uint8_t> &parity_payload)
{
    if (parity_payload.size() < kFecRecordPrefixBytes)
        return std::nullopt;
    std::vector<std::uint8_t> acc = parity_payload;
    for (const ParsedChunk &chunk : received) {
        // A record longer than the parity means this chunk was not
        // covered by this parity — the group is inconsistent.
        if (kFecRecordPrefixBytes + chunk.payload.size() >
            acc.size())
            return std::nullopt;
        xorRecordInto(acc, chunk.header, ByteSpan(chunk.payload));
    }
    return recoverFecRecord(acc);
}

}  // namespace edgepcc
