#include "edgepcc/stream/redundancy_controller.h"

#include <algorithm>
#include <cmath>

#include "edgepcc/common/trace.h"

namespace edgepcc {

RedundancyController::RedundancyController(
    RedundancyConfig config, int initial_gop_size,
    double initial_reuse_threshold)
    : config_(config),
      gop_size_(std::clamp(initial_gop_size,
                           std::max(config.min_gop_size, 1),
                           std::max(config.max_gop_size, 1))),
      threshold_(std::clamp(initial_reuse_threshold,
                            config.min_threshold,
                            config.max_threshold))
{
}

RedundancyDecision
RedundancyController::decideLocked() const
{
    RedundancyDecision d;

    // Parity depth m covers the bursts actually observed: parity
    // is useless against a burst longer than m, so m tracks the
    // smoothed burst length, not the loss rate.
    const int m = std::clamp(
        static_cast<int>(std::ceil(ewma_burst_ - 1e-9)),
        std::max(config_.min_parity, 1),
        std::max(config_.max_parity, 1));

    // Group size k from the parity byte share the loss estimate
    // justifies: share = clamp(safety * loss, floor, cap), then
    // m / (k + m) == share  =>  k = m * (1 - share) / share. The
    // floor is the share at k = max_group_size (the cheapest point
    // that still fields m parity rows).
    const int k_max = std::max(config_.max_group_size,
                               config_.min_group_size);
    const double floor_share =
        static_cast<double>(m) / static_cast<double>(k_max + m);
    const double share = std::clamp(
        config_.burst_safety * ewma_loss_, floor_share,
        std::max(config_.max_parity_share, floor_share));
    const int k_raw = static_cast<int>(std::lround(
        static_cast<double>(m) * (1.0 - share) / share));
    // k > m keeps the code a net win over plain repetition.
    const int k = std::clamp(
        k_raw, std::max({config_.min_group_size, m + 1, 2}),
        k_max);

    d.group_size = k;
    d.parity_chunks = m;
    d.gop_size = gop_size_;
    d.force_keyframe = force_key_;
    if (config_.wire_budget_bytes > 0) {
        // The encoder may spend only what parity leaves over: the
        // overload/byte ladder then sees redundancy's true cost
        // instead of discovering it as overshoot.
        d.payload_budget_bytes = static_cast<std::uint64_t>(
            static_cast<double>(config_.wire_budget_bytes) *
            static_cast<double>(k) / static_cast<double>(k + m));
        d.reuse_threshold = threshold_;
    }
    return d;
}

RedundancyDecision
RedundancyController::decide() const
{
    ScopedTrace trace("stream.redundancy_decide",
                      Tracer::kVerbosityKernel);
    MutexLock lock(mutex_);
    return decideLocked();
}

bool
RedundancyController::consumeForcedKeyframe()
{
    MutexLock lock(mutex_);
    const bool fire = force_key_;
    force_key_ = false;
    return fire;
}

void
RedundancyController::onFrameFeedback(int chunks_sent,
                                      int chunks_lost,
                                      int max_burst,
                                      bool delivered)
{
    MutexLock lock(mutex_);
    const double alpha =
        std::clamp(config_.ewma_alpha, 1e-6, 1.0);
    const double loss =
        chunks_sent > 0 ? static_cast<double>(chunks_lost) /
                              static_cast<double>(chunks_sent)
                        : 0.0;
    ewma_loss_ = alpha * loss + (1.0 - alpha) * ewma_loss_;
    // Burst length only means something when chunks were lost; a
    // clean frame instead decays the estimate toward 1 (the
    // uncorrelated-loss baseline) so m relaxes on quiet links.
    const double burst_sample =
        chunks_lost > 0
            ? static_cast<double>(std::max(max_burst, 1))
            : 1.0;
    ewma_burst_ =
        alpha * burst_sample + (1.0 - alpha) * ewma_burst_;

    // GOP + keyframe react only to genuinely unrecoverable loss:
    // parity-absorbed damage already paid its bytes.
    if (!delivered) {
        force_key_ = true;
        clean_streak_ = 0;
        gop_size_ = std::max(gop_size_ / 2,
                             std::max(config_.min_gop_size, 1));
        return;
    }
    if (++clean_streak_ >= std::max(config_.grow_after_clean, 1)) {
        clean_streak_ = 0;
        gop_size_ = std::min(gop_size_ + 1,
                             std::max(config_.max_gop_size, 1));
    }
}

void
RedundancyController::onEncodedFrame(Frame::Type type,
                                     std::uint64_t payload_bytes)
{
    if (config_.wire_budget_bytes == 0 ||
        type != Frame::Type::kPredicted || payload_bytes == 0)
        return;
    MutexLock lock(mutex_);
    // Same multiplicative rule as ReuseRateController, but the
    // target is the *post-parity* payload budget, so bitrate and
    // redundancy trade inside one wire envelope.
    const double budget = static_cast<double>(
        decideLocked().payload_budget_bytes);
    if (budget <= 0.0)
        return;
    const double ratio =
        static_cast<double>(payload_bytes) / budget;
    const double gain = std::clamp(config_.rate_gain, 0.0, 1.0);
    threshold_ *= std::pow(ratio, gain);
    threshold_ = std::clamp(threshold_, config_.min_threshold,
                            config_.max_threshold);
}

}  // namespace edgepcc
