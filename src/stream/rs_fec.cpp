#include "edgepcc/stream/rs_fec.h"

#include <algorithm>
#include <utility>

#include "edgepcc/common/gf256.h"
#include "edgepcc/common/trace.h"
#include "edgepcc/platform/simd.h"

namespace edgepcc {

std::uint8_t
rsCoefficient(int k, int row, int i)
{
    // Cauchy points: x_row = k + row (parity), y_i = i (data). All
    // distinct for k + row <= 255 and i < k, so x ^ y is never 0
    // and every square submatrix is invertible (MDS).
    return gfInv(static_cast<std::uint8_t>((k + row) ^ i));
}

namespace {

/** dst ^= coeff * record(header, payload), the record being the
 *  18-byte FEC prefix followed by the payload. `dst` must already
 *  span the record. */
void
mulAddRecord(std::uint8_t *dst, const ChunkHeader &header,
             ByteSpan payload, std::uint8_t coeff)
{
    std::uint8_t prefix[kFecRecordPrefixBytes];
    writeFecRecordPrefix(prefix, header, payload.size());
    gfMulAddBytes(dst, prefix, coeff, kFecRecordPrefixBytes);
    if (!payload.empty())
        gfMulAddBytes(dst + kFecRecordPrefixBytes, payload.data(),
                      coeff, payload.size());
}

}  // namespace

void
buildRsParityInto(const std::vector<ChunkView> &group, int row,
                  std::vector<std::uint8_t> &parity)
{
    ScopedTrace trace("stream.rs_encode",
                      Tracer::kVerbosityKernel);
    const int k = static_cast<int>(group.size());
    std::size_t longest = 0;
    for (const ChunkView &chunk : group)
        longest = std::max(longest, kFecRecordPrefixBytes +
                                        chunk.payload.size());
    parity.assign(longest, 0);
    for (int i = 0; i < k; ++i)
        mulAddRecord(parity.data(), group[i].header,
                     group[i].payload, rsCoefficient(k, row, i));
}

std::optional<std::vector<ParsedChunk>>
recoverRsChunks(int k,
                const std::map<std::uint8_t, ParsedChunk> &data,
                const std::map<int, std::vector<std::uint8_t>>
                    &parity_rows)
{
    ScopedTrace trace("stream.rs_decode",
                      Tracer::kVerbosityKernel);
    if (k < 1 || k > kRsMaxGroupPlusParity ||
        data.size() > static_cast<std::size_t>(k))
        return std::nullopt;
    for (const auto &[seq, chunk] : data) {
        if (static_cast<int>(seq) >= k)
            return std::nullopt;
    }

    // Erasures: the data sequence numbers that never arrived.
    std::vector<int> missing;
    for (int i = 0; i < k; ++i) {
        if (data.find(static_cast<std::uint8_t>(i)) == data.end())
            missing.push_back(i);
    }
    const std::size_t e = missing.size();
    if (e == 0)
        return std::vector<ParsedChunk>{};

    // Usable parity rows: row indices a valid encoder could have
    // produced (k + row fits the field), all the same length, long
    // enough to cover every known record. Anything else is an
    // inconsistent (possibly adversarial) group composition.
    std::vector<int> rows;
    std::size_t row_len = 0;
    for (const auto &[row, payload] : parity_rows) {
        if (row < 0 || k + row > kRsMaxGroupPlusParity)
            return std::nullopt;
        if (rows.empty())
            row_len = payload.size();
        else if (payload.size() != row_len)
            return std::nullopt;
        if (rows.size() < e)
            rows.push_back(row);
    }
    if (rows.size() < e || row_len < kFecRecordPrefixBytes)
        return std::nullopt;
    for (const auto &[seq, chunk] : data) {
        if (kFecRecordPrefixBytes + chunk.payload.size() > row_len)
            return std::nullopt;
    }

    // Syndromes: each surviving parity row minus the contribution
    // of every known data record leaves the combination of the
    // missing records alone.
    std::vector<std::vector<std::uint8_t>> syn(e);
    for (std::size_t r = 0; r < e; ++r) {
        syn[r] = parity_rows.at(rows[r]);
        for (const auto &[seq, chunk] : data)
            mulAddRecord(syn[r].data(), chunk.header,
                         ByteSpan(chunk.payload),
                         rsCoefficient(k, rows[r], seq));
    }

    // Solve the e x e Cauchy subsystem by Gauss-Jordan over
    // GF(256), mirroring every row operation onto the syndrome byte
    // rows (gfMulAddBytes is the dispatched inner loop).
    std::vector<std::vector<std::uint8_t>> a(
        e, std::vector<std::uint8_t>(e));
    for (std::size_t r = 0; r < e; ++r) {
        for (std::size_t c = 0; c < e; ++c)
            a[r][c] = rsCoefficient(k, rows[r], missing[c]);
    }
    std::vector<std::uint8_t> scratch;
    for (std::size_t col = 0; col < e; ++col) {
        std::size_t pivot = col;
        while (pivot < e && a[pivot][col] == 0)
            ++pivot;
        if (pivot == e)
            return std::nullopt;  // singular: inconsistent group
        if (pivot != col) {
            std::swap(a[pivot], a[col]);
            std::swap(syn[pivot], syn[col]);
        }
        const std::uint8_t inv = gfInv(a[col][col]);
        if (inv != 1) {
            for (std::size_t c = 0; c < e; ++c)
                a[col][c] = gfMul(a[col][c], inv);
            scratch = std::move(syn[col]);
            syn[col].assign(row_len, 0);
            gfMulAddBytes(syn[col].data(), scratch.data(), inv,
                          row_len);
        }
        for (std::size_t r = 0; r < e; ++r) {
            if (r == col || a[r][col] == 0)
                continue;
            const std::uint8_t factor = a[r][col];
            for (std::size_t c = 0; c < e; ++c)
                a[r][c] = static_cast<std::uint8_t>(
                    a[r][c] ^ gfMul(factor, a[col][c]));
            gfMulAddBytes(syn[r].data(), syn[col].data(), factor,
                          row_len);
        }
    }

    std::vector<ParsedChunk> recovered;
    recovered.reserve(e);
    for (std::size_t r = 0; r < e; ++r) {
        std::optional<ParsedChunk> chunk =
            recoverFecRecord(syn[r], kChunkFlagRsFec);
        // The record embeds its own fec_seq; a mismatch with the
        // erasure position means the algebra solved a group that
        // was never coded together.
        if (!chunk.has_value() ||
            chunk->header.fec_seq !=
                static_cast<std::uint8_t>(missing[r]))
            return std::nullopt;
        recovered.push_back(std::move(*chunk));
    }
    return recovered;
}

}  // namespace edgepcc
