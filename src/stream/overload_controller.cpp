#include "edgepcc/stream/overload_controller.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "edgepcc/common/trace.h"

namespace edgepcc {

namespace {

/** splitmix64: one deterministic draw per (seed, frame) pair, so
 *  jitter does not depend on evaluation order. */
std::uint64_t
mix64(std::uint64_t v)
{
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
}

}  // namespace

const char *
overloadRungName(OverloadRung rung)
{
    switch (rung) {
      case OverloadRung::kFull:
        return "full";
      case OverloadRung::kNoEntropy:
        return "no-entropy";
      case OverloadRung::kCoarseGeometry:
        return "coarse-geometry";
      case OverloadRung::kCoarseAttr:
        return "coarse-attr";
      case OverloadRung::kInterOnly:
        return "inter-only";
      case OverloadRung::kSkip:
        return "skip";
    }
    return "unknown";
}

const char *
overloadBudgetSourceName(OverloadBudgetSource source)
{
    switch (source) {
      case OverloadBudgetSource::kModelled:
        return "modelled";
      case OverloadBudgetSource::kWallClock:
        return "wall-clock";
    }
    return "unknown";
}

const char *
overloadEventName(OverloadEvent event)
{
    switch (event) {
      case OverloadEvent::kNone:
        return "none";
      case OverloadEvent::kDeadlineMiss:
        return "deadline-miss";
      case OverloadEvent::kStageStall:
        return "stage-stall";
      case OverloadEvent::kRecovered:
        return "recovered";
      case OverloadEvent::kAllocFailure:
        return "alloc-failure";
      case OverloadEvent::kQueueDrop:
        return "queue-drop";
    }
    return "unknown";
}

// -----------------------------------------------------------------
// LoadSpec
// -----------------------------------------------------------------

LoadSpec
LoadSpec::none()
{
    return LoadSpec{};
}

LoadSpec
LoadSpec::burst2x()
{
    LoadSpec spec;
    spec.burst_start = 8;
    spec.burst_frames = 12;
    spec.burst_slowdown = 2.0;
    return spec;
}

LoadSpec
LoadSpec::stallGeometry()
{
    LoadSpec spec = burst2x();
    spec.stall_stage = "geom.";
    spec.stall_factor = 6.0;
    return spec;
}

bool
LoadSpec::inBurst(std::uint32_t frame) const
{
    return burst_frames != 0 && frame >= burst_start &&
           frame < burst_start + burst_frames;
}

bool
LoadSpec::allocFailsAt(std::uint32_t frame) const
{
    return std::find(alloc_failure_frames.begin(),
                     alloc_failure_frames.end(),
                     frame) != alloc_failure_frames.end();
}

bool
LoadSpec::isIdle() const
{
    return slowdown == 1.0 && burst_frames == 0 &&
           stall_factor == 1.0 && alloc_failure_frames.empty() &&
           jitter == 0.0;
}

double
LoadSpec::factorFor(std::uint32_t frame,
                    const std::string &stage) const
{
    double factor = inBurst(frame) ? burst_slowdown : slowdown;
    if (inBurst(frame) && !stall_stage.empty() &&
        stage.rfind(stall_stage, 0) == 0) {
        factor *= stall_factor;
    }
    return factor;
}

double
LoadSpec::jitterFor(std::uint32_t frame) const
{
    if (jitter <= 0.0)
        return 1.0;
    const std::uint64_t draw = mix64(seed ^ (0xf00dull + frame));
    // Map the top 53 bits onto [0, 1).
    const double unit =
        static_cast<double>(draw >> 11) * 0x1.0p-53;
    return 1.0 - jitter + 2.0 * jitter * unit;
}

Expected<LoadSpec>
LoadSpec::parse(const std::string &text)
{
    if (text.empty() || text == "none")
        return LoadSpec::none();
    if (text == "burst2x")
        return LoadSpec::burst2x();
    if (text == "stall-geometry")
        return LoadSpec::stallGeometry();

    LoadSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string pair = text.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return invalidArgument(
                "LoadSpec::parse: expected key=value, got '" +
                pair + "'");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "stall-stage") {
            if (value.empty())
                return invalidArgument(
                    "LoadSpec::parse: empty stall-stage");
            spec.stall_stage = value;
            continue;
        }
        char *end = nullptr;
        const double num = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            return invalidArgument(
                "LoadSpec::parse: bad number in '" + pair + "'");
        if (key == "slowdown") {
            spec.slowdown = num;
        } else if (key == "burst-start") {
            spec.burst_start = static_cast<std::uint32_t>(num);
        } else if (key == "burst-frames") {
            spec.burst_frames = static_cast<std::uint32_t>(num);
        } else if (key == "burst-slowdown") {
            spec.burst_slowdown = num;
        } else if (key == "stall-factor") {
            spec.stall_factor = num;
            if (spec.stall_stage.empty())
                spec.stall_stage = "geom.";
        } else if (key == "alloc-fail") {
            spec.alloc_failure_frames.push_back(
                static_cast<std::uint32_t>(num));
        } else if (key == "jitter") {
            spec.jitter = num;
        } else if (key == "seed") {
            spec.seed = static_cast<std::uint64_t>(num);
        } else {
            return invalidArgument(
                "LoadSpec::parse: unknown key '" + key + "'");
        }
    }
    if (spec.slowdown <= 0.0 || spec.burst_slowdown <= 0.0 ||
        spec.stall_factor <= 0.0 || spec.jitter < 0.0 ||
        spec.jitter >= 1.0) {
        return invalidArgument(
            "LoadSpec::parse: factors must be > 0 and jitter in "
            "[0, 1)");
    }
    return spec;
}

// -----------------------------------------------------------------
// OverloadConfig / OverloadStats
// -----------------------------------------------------------------

double
OverloadConfig::budgetSeconds() const
{
    if (deadline_s > 0.0)
        return deadline_s;
    return target_fps > 0.0 ? 1.0 / target_fps : 0.0;
}

double
OverloadStats::deadlineMissRate() const
{
    return frames == 0 ? 0.0
                       : static_cast<double>(deadline_misses) /
                             static_cast<double>(frames);
}

// -----------------------------------------------------------------
// OverloadController
// -----------------------------------------------------------------

OverloadController::OverloadController(OverloadConfig config)
    : config_(std::move(config)),
      budget_s_(config_.budgetSeconds())
{
}

OverloadEvent
OverloadController::descendLocked(OverloadEvent cause)
{
    headroom_streak_ = 0;
    if (rung_ != OverloadRung::kSkip) {
        rung_ = static_cast<OverloadRung>(
            static_cast<int>(rung_) + 1);
    }
    return cause;
}

OverloadEvent
OverloadController::onFrame(double encode_s)
{
    if (budget_s_ <= 0.0)
        return OverloadEvent::kNone;
    MutexLock lock(mutex_);
    const double utilization = encode_s / budget_s_;
    ewma_utilization_ =
        (1.0 - config_.ewma_alpha) * ewma_utilization_ +
        config_.ewma_alpha * utilization;
    if (encode_s > budget_s_)
        return descendLocked(OverloadEvent::kDeadlineMiss);
    if (rung_ == OverloadRung::kFull ||
        ewma_utilization_ >= config_.recover_headroom) {
        headroom_streak_ = 0;
        return OverloadEvent::kNone;
    }
    if (++headroom_streak_ < config_.recover_after_clean)
        return OverloadEvent::kNone;
    headroom_streak_ = 0;
    rung_ = static_cast<OverloadRung>(static_cast<int>(rung_) - 1);
    return OverloadEvent::kRecovered;
}

OverloadEvent
OverloadController::onStall(double encode_s)
{
    if (budget_s_ <= 0.0)
        return OverloadEvent::kNone;
    MutexLock lock(mutex_);
    ewma_utilization_ =
        (1.0 - config_.ewma_alpha) * ewma_utilization_ +
        config_.ewma_alpha * (encode_s / budget_s_);
    return descendLocked(OverloadEvent::kStageStall);
}

CodecConfig
OverloadController::configForRung(const CodecConfig &base,
                                  OverloadRung rung,
                                  const OverloadConfig &config)
{
    CodecConfig derived = base;
    const int level = static_cast<int>(rung);
    if (level >= static_cast<int>(OverloadRung::kNoEntropy)) {
        derived.geometry.entropy_coding = false;
        derived.geometry.contextual_entropy = false;
    }
    // kCoarseGeometry acts on the input cloud (coarsenCloud in the
    // session), not on the codec configuration.
    if (level >= static_cast<int>(OverloadRung::kCoarseAttr)) {
        const std::uint32_t mult =
            std::max<std::uint32_t>(config.coarse_quant_multiplier,
                                    1);
        derived.segment.quant_step =
            std::max<std::uint32_t>(derived.segment.quant_step, 1) *
            mult;
        derived.raht.qstep *= static_cast<double>(mult);
        derived.predicting.qstep *= static_cast<double>(mult);
    }
    if (level >= static_cast<int>(OverloadRung::kInterOnly) &&
        derived.inter_mode != InterMode::kNone) {
        // One anchor I frame, then P frames until the ladder climbs
        // back (forced keyframes still re-anchor when needed).
        derived.gop_size = 1 << 20;
    }
    return derived;
}

// -----------------------------------------------------------------
// effectiveEncodeLatency
// -----------------------------------------------------------------

EffectiveLatency
effectiveEncodeLatency(const PipelineTiming &timing,
                       const OverloadConfig &config,
                       std::uint32_t frame_id)
{
    const LoadSpec &load = config.load;
    const double jitter = load.jitterFor(frame_id);
    EffectiveLatency eff;
    for (const StageTiming &stage : timing.stages) {
        const double base =
            config.budget_source == OverloadBudgetSource::kWallClock
                ? stage.host_seconds
                : stage.model_seconds;
        const double stage_s =
            base * load.factorFor(frame_id, stage.name) * jitter;
        eff.total_s += stage_s;
        if (stage_s > eff.worst_stage_s) {
            eff.worst_stage_s = stage_s;
            eff.worst_stage = stage.name;
        }
    }
    return eff;
}

// -----------------------------------------------------------------
// coarsenCloud
// -----------------------------------------------------------------

VoxelCloud
coarsenCloud(const VoxelCloud &cloud, int drop_bits)
{
    ScopedTrace trace("overload.coarsen");
    const int bits =
        std::clamp(drop_bits, 0, std::max(cloud.gridBits() - 1, 0));
    if (bits == 0)
        return cloud;
    VoxelCloud coarse(cloud.gridBits() - bits);
    // Deterministic first-wins merge in coarse Morton-free key
    // order of appearance (matches the geometry codec's dedup
    // rule for duplicate voxels).
    std::map<std::uint64_t, std::size_t> seen;
    coarse.reserve(cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const std::uint16_t x =
            static_cast<std::uint16_t>(cloud.x()[i] >> bits);
        const std::uint16_t y =
            static_cast<std::uint16_t>(cloud.y()[i] >> bits);
        const std::uint16_t z =
            static_cast<std::uint16_t>(cloud.z()[i] >> bits);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(x) << 32) |
            (static_cast<std::uint64_t>(y) << 16) |
            static_cast<std::uint64_t>(z);
        if (!seen.emplace(key, i).second)
            continue;
        coarse.add(x, y, z, cloud.r()[i], cloud.g()[i],
                   cloud.b()[i]);
    }
    return coarse;
}

}  // namespace edgepcc
