#include "edgepcc/stream/stream_session.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "edgepcc/common/trace.h"
#include "edgepcc/interframe/block_matcher.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/stream/rs_fec.h"

namespace edgepcc {

const char *
frameOutcomeName(FrameOutcome outcome)
{
    switch (outcome) {
      case FrameOutcome::kOk:
        return "ok";
      case FrameOutcome::kResynced:
        return "resynced";
      case FrameOutcome::kConcealed:
        return "concealed";
      case FrameOutcome::kSkipped:
        return "skipped";
    }
    return "unknown";
}

double
SessionStats::okOrConcealedFraction() const
{
    const std::size_t total = totalFrames();
    return total == 0
               ? 0.0
               : static_cast<double>(total - frames_skipped) /
                     static_cast<double>(total);
}

double
FecStats::singleLossRecoveredFraction() const
{
    return single_loss_groups == 0
               ? 1.0
               : static_cast<double>(single_loss_recovered) /
                     static_cast<double>(single_loss_groups);
}

double
FecStats::multiLossRecoveredFraction() const
{
    return multi_loss_groups == 0
               ? 1.0
               : static_cast<double>(multi_loss_recovered) /
                     static_cast<double>(multi_loss_groups);
}

// -----------------------------------------------------------------
// StreamReceiver
// -----------------------------------------------------------------

void
StreamReceiver::bufferSliceLocked(const ParsedChunk &chunk)
{
    SliceBuffer &buf = by_frame_[chunk.header.frame_id];
    if (buf.slice_count == 0) {
        // First intact slice of the frame fixes its shape.
        buf.slice_count = std::max<std::uint16_t>(
            chunk.header.slice_count, 1);
        buf.type = chunk.header.frame_type;
        buf.gop_id = chunk.header.gop_id;
    }
    if (chunk.header.slice_index >= buf.slice_count)
        return;  // inconsistent with the established shape
    // First intact copy wins; duplicates, retransmissions and FEC
    // reconstructions of an already-buffered slice are dropped.
    buf.slices.emplace(chunk.header.slice_index, chunk.payload);
}

void
StreamReceiver::tryRecoverLocked(FecGroup &group)
{
    if (group.recovered || group.expected == 0 ||
        group.data.size() >=
            static_cast<std::size_t>(group.expected))
        return;
    if (group.rs) {
        // Reed-Solomon: solvable once the received data rows plus
        // parity rows reach k. Retried on every later arrival (a
        // failed attempt may succeed once another row lands).
        const std::size_t missing =
            group.expected - group.data.size();
        if (group.parity_rows.size() < missing)
            return;
        std::optional<std::vector<ParsedChunk>> rebuilt =
            recoverRsChunks(group.expected, group.data,
                            group.parity_rows);
        if (!rebuilt.has_value())
            return;
        group.recovered = true;
        recovered_chunks_ += rebuilt->size();
        for (const ParsedChunk &chunk : *rebuilt)
            bufferSliceLocked(chunk);
        return;
    }
    if (!group.parity_present ||
        group.data.size() + 1 !=
            static_cast<std::size_t>(group.expected))
        return;
    std::vector<ParsedChunk> received;
    received.reserve(group.data.size());
    for (const auto &[seq, chunk] : group.data)
        received.push_back(chunk);
    std::optional<ParsedChunk> rebuilt =
        recoverFecChunk(received, group.parity);
    if (!rebuilt.has_value())
        return;
    group.recovered = true;
    ++recovered_chunks_;
    bufferSliceLocked(*rebuilt);
}

WireScanStats
StreamReceiver::ingest(const std::vector<std::uint8_t> &wire)
{
    WireScanStats stats;
    std::vector<ParsedChunk> chunks = scanWire(wire, &stats);
    MutexLock lock(mutex_);
    for (ParsedChunk &chunk : chunks) {
        if (chunk.header.isParity()) {
            FecGroup &group = groups_[chunk.header.fec_group];
            if (chunk.header.isRsFec()) {
                group.rs = true;
                // Parity row index from the fec_seq encoding
                // (0xff, 0xfe, ...); first intact copy of each
                // row wins.
                group.parity_rows.emplace(
                    rsParityRow(chunk.header.fec_seq),
                    std::move(chunk.payload));
            } else if (!group.parity_present) {
                group.parity_present = true;
                group.parity = std::move(chunk.payload);
            }
            if (group.expected == 0)
                group.expected = chunk.header.fec_group_size;
            tryRecoverLocked(group);
            continue;
        }
        bufferSliceLocked(chunk);
        if ((chunk.header.flags & kChunkFlagFec) != 0) {
            FecGroup &group = groups_[chunk.header.fec_group];
            if (chunk.header.isRsFec())
                group.rs = true;
            if (group.expected == 0)
                group.expected = chunk.header.fec_group_size;
            group.data.emplace(chunk.header.fec_seq,
                               std::move(chunk));
            tryRecoverLocked(group);
        }
    }
    wire_.bytes_scanned += stats.bytes_scanned;
    wire_.bytes_skipped += stats.bytes_skipped;
    wire_.chunks_ok += stats.chunks_ok;
    wire_.chunks_bad_crc += stats.chunks_bad_crc;
    wire_.chunks_truncated += stats.chunks_truncated;
    return stats;
}

bool
StreamReceiver::frameCompleteLocked(std::uint32_t frame_id) const
{
    const auto it = by_frame_.find(frame_id);
    return it != by_frame_.end() && it->second.complete();
}

bool
StreamReceiver::hasFrame(std::uint32_t frame_id) const
{
    MutexLock lock(mutex_);
    return frameCompleteLocked(frame_id);
}

bool
StreamReceiver::hasSlice(std::uint32_t frame_id,
                         std::uint16_t slice_index) const
{
    MutexLock lock(mutex_);
    const auto it = by_frame_.find(frame_id);
    return it != by_frame_.end() &&
           it->second.slices.count(slice_index) != 0;
}

std::vector<std::uint32_t>
StreamReceiver::missingFrames(std::uint32_t expected_frames) const
{
    MutexLock lock(mutex_);
    std::vector<std::uint32_t> missing;
    for (std::uint32_t id = 0; id < expected_frames; ++id) {
        if (!frameCompleteLocked(id))
            missing.push_back(id);
    }
    return missing;
}

WireScanStats
StreamReceiver::wireStats() const
{
    MutexLock lock(mutex_);
    return wire_;
}

FecStats
StreamReceiver::fecStats() const
{
    MutexLock lock(mutex_);
    FecStats stats;
    stats.recovered_chunks = recovered_chunks_;
    for (const auto &[id, group] : groups_) {
        ++stats.groups;
        const std::size_t expected = group.expected;
        const std::size_t data_missing =
            expected > group.data.size()
                ? expected - group.data.size()
                : 0;
        if (group.rs) {
            stats.parity_received += group.parity_rows.size();
            // RS accounting keys off data losses alone (a lost
            // parity row needs no recovery): one lost data chunk
            // is a single-loss group, two or more are the
            // multi-loss case XOR could never cover.
            if (data_missing == 1) {
                ++stats.single_loss_groups;
                if (group.recovered)
                    ++stats.single_loss_recovered;
            } else if (data_missing >= 2) {
                ++stats.multi_loss_groups;
                if (group.recovered)
                    ++stats.multi_loss_recovered;
            }
        } else {
            if (group.parity_present)
                ++stats.parity_received;
            const std::size_t missing_total =
                data_missing + (group.parity_present ? 0 : 1);
            if (missing_total == 1) {
                ++stats.single_loss_groups;
                if (data_missing == 0 || group.recovered)
                    ++stats.single_loss_recovered;
            }
        }
        if (data_missing > 0 && !group.recovered)
            ++stats.unrecovered_groups;
    }
    return stats;
}

std::vector<SessionFrame>
StreamReceiver::decodeAll(std::uint32_t expected_frames)
{
    ScopedTrace trace("session.decode");
    MutexLock lock(mutex_);
    std::vector<SessionFrame> results;
    results.reserve(expected_frames);

    // Ladder state: the last presentable cloud (freeze/conceal
    // source), the GOP id of the last intact I frame (reference
    // validity), and whether damage occurred since the last intact
    // I frame (drives the resynced outcome).
    std::optional<VoxelCloud> last_good;
    std::optional<std::uint32_t> good_intra_gop;
    bool damaged = false;

    const auto degrade = [&](SessionFrame &result) {
        if (last_good.has_value()) {
            result.outcome = FrameOutcome::kConcealed;
            result.cloud = *last_good;
        } else {
            result.outcome = FrameOutcome::kSkipped;
        }
        damaged = true;
    };

    for (std::uint32_t id = 0; id < expected_frames; ++id) {
        SessionFrame result;
        result.frame_id = id;

        const auto it = by_frame_.find(id);
        if (it == by_frame_.end() || !it->second.complete()) {
            // Some slice never arrived intact: freeze the last good
            // frame, or skip when there has not been one yet.
            if (it != by_frame_.end())
                result.type = it->second.type;
            degrade(result);
            results.push_back(std::move(result));
            continue;
        }
        const SliceBuffer &buf = it->second;
        result.type = buf.type;
        result.delivered = true;

        // Reassemble the frame payload from its slices (std::map
        // iterates in slice_index order).
        std::vector<const std::vector<std::uint8_t> *> parts;
        parts.reserve(buf.slices.size());
        for (const auto &[index, payload] : buf.slices)
            parts.push_back(&payload);
        const std::vector<std::uint8_t> payload =
            assembleSlices(parts);

        if (buf.type == Frame::Type::kIntra) {
            auto decoded = decoder_.decode(payload);
            if (decoded.hasValue()) {
                result.outcome = damaged
                                     ? FrameOutcome::kResynced
                                     : FrameOutcome::kOk;
                result.cloud = std::move(decoded->cloud);
                result.decode_profile =
                    std::move(decoded->profile);
                last_good = result.cloud;
                good_intra_gop = buf.gop_id;
                damaged = false;
            } else {
                // The payload cleared the transport CRC but still
                // failed the codec's own validation; treat like a
                // lost chunk.
                degrade(result);
            }
            results.push_back(std::move(result));
            continue;
        }

        // P frame: decodable only when its anchor I frame was
        // decoded intact. Otherwise the decoder's reference is
        // stale (silent corruption) or absent — promote to a
        // geometry-only decode with concealed attributes.
        const bool reference_ok =
            good_intra_gop.has_value() &&
            *good_intra_gop == buf.gop_id &&
            decoder_.hasReference();
        if (reference_ok) {
            auto decoded = decoder_.decode(payload);
            if (decoded.hasValue()) {
                result.outcome = FrameOutcome::kOk;
                result.cloud = std::move(decoded->cloud);
                result.decode_profile =
                    std::move(decoded->profile);
                last_good = result.cloud;
                results.push_back(std::move(result));
                continue;
            }
        }
        bool concealed = false;
        auto promoted = decoder_.decodePromoted(
            payload,
            last_good.has_value() ? &*last_good : nullptr,
            &concealed);
        if (promoted.hasValue()) {
            result.outcome = FrameOutcome::kConcealed;
            result.cloud = std::move(promoted->cloud);
            result.decode_profile = std::move(promoted->profile);
            // Geometry is current even though attributes are
            // borrowed: better freeze source than an older frame.
            last_good = result.cloud;
            damaged = true;
        } else {
            degrade(result);
        }
        results.push_back(std::move(result));
    }
    return results;
}

// -----------------------------------------------------------------
// StreamSession
// -----------------------------------------------------------------

RetryPolicy
SessionConfig::retransmitPolicy() const
{
    RetryPolicy policy;
    policy.max_attempts = max_retransmits;
    policy.initial_backoff_s = backoff_ms / 1e3;
    policy.multiplier = 2.0;
    // The historical NACK schedule never clamped; keep its values
    // bit-identical (max_retransmits is small, so no overflow).
    policy.max_backoff_s =
        std::numeric_limits<double>::infinity();
    policy.jitter = 0.0;
    return policy;
}

Status
validateSessionConfig(const SessionConfig &config)
{
    if (config.max_retransmits < 0)
        return invalidArgument(
            "SessionConfig: max_retransmits must be >= 0, got " +
            std::to_string(config.max_retransmits));
    if (config.backoff_ms < 0.0)
        return invalidArgument(
            "SessionConfig: backoff_ms must be >= 0");

    const FecSpec &fec = config.fec;
    if (fec.enabled) {
        if (fec.group_size < 2 || fec.group_size > 255)
            return invalidArgument(
                "SessionConfig: fec.group_size must be in [2, "
                "255], got " +
                std::to_string(fec.group_size));
        if (fec.scheme == FecScheme::kReedSolomon) {
            if (fec.parity_chunks < 1)
                return invalidArgument(
                    "SessionConfig: RS fec.parity_chunks must be "
                    ">= 1, got " +
                    std::to_string(fec.parity_chunks));
            if (fec.parity_chunks >= fec.group_size)
                return invalidArgument(
                    "SessionConfig: RS parity m (" +
                    std::to_string(fec.parity_chunks) +
                    ") must be < group size k (" +
                    std::to_string(fec.group_size) +
                    "); at m >= k plain repetition is cheaper");
            if (fec.group_size + fec.parity_chunks >
                kRsMaxGroupPlusParity)
                return invalidArgument(
                    "SessionConfig: fec.group_size + "
                    "parity_chunks must be <= 255 (GF(256) Cauchy "
                    "bound)");
        }
    } else {
        if (config.fec_interleave > 1)
            return invalidArgument(
                "SessionConfig: fec_interleave > 1 requires "
                "fec.enabled");
        if (config.adaptive_fec)
            return invalidArgument(
                "SessionConfig: adaptive_fec requires "
                "fec.enabled");
    }

    if (config.fec_interleave < 1)
        return invalidArgument(
            "SessionConfig: fec_interleave must be >= 1, got " +
            std::to_string(config.fec_interleave));
    if (config.fec_interleave > 1) {
        if (config.mtu_payload == 0)
            return invalidArgument(
                "SessionConfig: fec_interleave > 1 requires MTU "
                "slicing (mtu_payload != 0) — one chunk per frame "
                "leaves nothing to stripe");
        if (fec.group_size % config.fec_interleave != 0)
            return invalidArgument(
                "SessionConfig: fec_interleave (" +
                std::to_string(config.fec_interleave) +
                ") must divide the group's slice budget "
                "(fec.group_size = " +
                std::to_string(fec.group_size) +
                ") so every lane carries equal-depth groups");
    }

    const RedundancyConfig &red = config.redundancy;
    if (red.enabled) {
        if (!fec.enabled || fec.scheme != FecScheme::kReedSolomon)
            return invalidArgument(
                "SessionConfig: redundancy controller requires "
                "fec.enabled with FecScheme::kReedSolomon");
        if (config.adaptive_fec)
            return invalidArgument(
                "SessionConfig: adaptive_fec cannot stack under "
                "the redundancy controller (it owns the FEC "
                "geometry)");
        if (red.min_group_size < 2 ||
            red.max_group_size < red.min_group_size)
            return invalidArgument(
                "SessionConfig: redundancy group-size bounds "
                "invalid (need 2 <= min <= max)");
        if (red.min_parity < 1 || red.max_parity < red.min_parity)
            return invalidArgument(
                "SessionConfig: redundancy parity bounds invalid "
                "(need 1 <= min <= max)");
        if (red.max_group_size + red.max_parity >
            kRsMaxGroupPlusParity)
            return invalidArgument(
                "SessionConfig: redundancy max_group_size + "
                "max_parity must be <= 255");
        if (red.max_parity_share <= 0.0 ||
            red.max_parity_share >= 1.0)
            return invalidArgument(
                "SessionConfig: redundancy max_parity_share must "
                "be in (0, 1)");
    }
    return Status();
}

StreamSession::StreamSession(CodecConfig codec,
                             SessionConfig session)
    : codec_(std::move(codec)), session_(std::move(session))
{
}

Expected<SessionReport>
StreamSession::run(const std::vector<VoxelCloud> &frames)
{
    if (frames.empty())
        return invalidArgument("StreamSession::run: no frames");
    if (Status valid = validateSessionConfig(session_);
        !valid.isOk())
        return valid;

    ScopedTrace trace("session.run");
    VideoEncoder encoder(codec_);
    LossyChannel channel(session_.channel);
    StreamReceiver receiver;
    AdaptiveGopController gop(session_.gop, codec_.gop_size);
    AdaptiveFecController fec_ctrl(session_.fec_adaptive,
                                   session_.fec.group_size);
    // Unified redundancy negotiation; supersedes the two stacked
    // controllers above (and keyframe_on_loss) when enabled.
    const bool redundancy_on = session_.redundancy.enabled;
    RedundancyController redundancy(
        session_.redundancy, codec_.gop_size,
        codec_.block_match.reuse_threshold);

    SessionReport report;
    report.stats = SessionStats{};

    // Overload subsystem (inactive unless configured): the encode
    // "latency" is the modelled edge-device time of the recorded
    // profile scaled by the injected LoadSpec, so ladder walks are
    // deterministic and wall-clock free.
    const bool overload_on = session_.overload.enabled;
    OverloadController ladder_ctrl(session_.overload);
    const EdgeDeviceModel device_model(session_.overload.device);
    const double budget_s = ladder_ctrl.budgetSeconds();
    const double fps = session_.overload.target_fps;
    const LoadSpec &load = session_.overload.load;
    OverloadStats &overload = report.overload;
    overload.enabled = overload_on;
    overload.deadline_s = overload_on ? budget_s : 0.0;
    double clock_s = 0.0;  ///< encoder-busy virtual time
    int applied_drop_bits = 0;
    OverloadRung applied_rung = OverloadRung::kFull;
    bool applied_any_rung = false;
    std::size_t consecutive_misses = 0;

    std::uint32_t next_sequence = 0;
    std::uint32_t gop_id = 0;
    std::uint16_t next_fec_group = 0;
    bool force_key = false;
    // Channel-stat watermarks for the redundancy controller's
    // per-frame loss/burst feedback (the deterministic stand-in
    // for a receiver loss report).
    std::size_t fb_sent = 0;
    std::size_t fb_lost = 0;
    std::size_t fb_bursts = 0;
    std::size_t fb_burst_dropped = 0;

    /** Per-frame transport accounting attached after decodeAll. */
    struct FrameSendInfo {
        int retransmits = 0;
        int nack_rounds = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t wire_bytes = 0;
        double backoff_s = 0.0;
        PipelineProfile encode_profile;
    };
    std::vector<FrameSendInfo> sent(frames.size());

    // Zero-copy send path: payloads are views into the encoded
    // frame (or the parity scratch), serialized into one reusable
    // wire buffer — the serialize step is the only payload copy
    // between the encoder and the channel.
    std::vector<std::uint8_t> wire_buf;
    std::vector<std::uint8_t> parity_buf;
    const auto sendChunk = [&](ChunkHeader header, ByteSpan payload,
                               FrameSendInfo &info) {
        header.sequence = next_sequence++;
        serializeChunkInto(header, payload, wire_buf);
        info.wire_bytes += wire_buf.size();
        ++report.stats.chunks_sent;
        for (const auto &arrival : channel.transmit(wire_buf))
            receiver.ingest(arrival);
    };

    for (std::size_t f = 0; f < frames.size(); ++f) {
        const auto frame_id32 = static_cast<std::uint32_t>(f);
        double queue_delay_s = 0.0;
        int queue_depth = 0;

        if (overload_on && fps > 0.0) {
            // Admission control on virtual time. Frame f is
            // captured at f/fps; the encoder serves frames in
            // order, so the arrived-unserved window is exactly
            // [f, last_arrived]. Oldest-drop backpressure keeps
            // the newest queue_capacity + 1 of them (stale frames
            // are worthless in telepresence).
            const double arrival = static_cast<double>(f) / fps;
            if (clock_s < arrival)
                clock_s = arrival;  // encoder idle until capture
            const std::size_t last_arrived = std::min(
                frames.size() - 1,
                static_cast<std::size_t>(clock_s * fps + 1e-9));
            queue_depth = static_cast<int>(last_arrived - f);
            queue_delay_s = clock_s - arrival;
            const std::size_t admitted =
                static_cast<std::size_t>(std::max(
                    session_.overload.queue_capacity, 0)) +
                1;
            if (last_arrived - f + 1 > admitted) {
                OverloadFrame record;
                record.frame_id = frame_id32;
                record.rung = ladder_ctrl.rung();
                record.event = OverloadEvent::kQueueDrop;
                record.queue_delay_s = queue_delay_s;
                record.queue_depth = queue_depth;
                overload.ladder.push_back(std::move(record));
                ++overload.queue_drops;
                continue;  // never encoded, never sent
            }
        }

        OverloadRung rung = ladder_ctrl.rung();
        if (overload_on && load.allocFailsAt(frame_id32)) {
            // Injected allocation failure: the encode entry point
            // reports resource exhaustion via Status and the
            // session sheds the frame instead of dying.
            OverloadFrame record;
            record.frame_id = frame_id32;
            record.rung = rung;
            record.event = OverloadEvent::kAllocFailure;
            record.queue_delay_s = queue_delay_s;
            record.queue_depth = queue_depth;
            overload.ladder.push_back(std::move(record));
            ++overload.alloc_failures;
            ++overload.rung_occupancy[static_cast<int>(rung)];
            continue;
        }
        if (overload_on && rung == OverloadRung::kSkip) {
            // Bottom rung: shed the whole frame. Zero encode cost
            // counts as headroom, so hysteresis climbs back out.
            const OverloadEvent event = ladder_ctrl.onFrame(0.0);
            OverloadFrame record;
            record.frame_id = frame_id32;
            record.rung = rung;
            record.event = event;
            record.queue_delay_s = queue_delay_s;
            record.queue_depth = queue_depth;
            overload.ladder.push_back(std::move(record));
            ++overload.rung_occupancy[static_cast<int>(rung)];
            ++overload.frames_skipped;
            if (ladder_ctrl.rung() != rung)
                ++overload.rung_transitions;
            consecutive_misses = 0;
            continue;
        }

        const VoxelCloud *input = &frames[f];
        VoxelCloud coarse{frames[f].gridBits()};
        if (overload_on) {
            if (!applied_any_rung || rung != applied_rung) {
                encoder.updateCoding(OverloadController::configForRung(
                    codec_, rung, session_.overload));
                applied_rung = rung;
                applied_any_rung = true;
            }
            const int drop_bits =
                rung >= OverloadRung::kCoarseGeometry
                    ? session_.overload.coarse_drop_bits
                    : 0;
            if (drop_bits != applied_drop_bits) {
                // The voxel grid changed; the prediction reference
                // lives on the old grid, so re-anchor.
                encoder.forceKeyframe();
                applied_drop_bits = drop_bits;
            }
            if (drop_bits > 0) {
                coarse = coarsenCloud(frames[f], drop_bits);
                input = &coarse;
            }
        }

        RedundancyDecision negotiated;
        if (redundancy_on) {
            negotiated = redundancy.decide();
            if (negotiated.reuse_threshold >= 0.0) {
                // Bitrate rung: steer P-frame payloads toward the
                // post-parity budget. Re-applied every frame —
                // the overload rung switch above replaces the
                // codec config wholesale.
                CodecConfig tuned =
                    overload_on && applied_any_rung
                        ? OverloadController::configForRung(
                              codec_, applied_rung,
                              session_.overload)
                        : codec_;
                tuned.block_match.reuse_threshold =
                    negotiated.reuse_threshold;
                encoder.updateCoding(tuned);
            }
            if (!overload_on || rung < OverloadRung::kInterOnly)
                encoder.setGopSize(negotiated.gop_size);
            if (redundancy.consumeForcedKeyframe())
                force_key = true;
        } else if (session_.adaptive_gop &&
                   (!overload_on ||
                    rung < OverloadRung::kInterOnly)) {
            encoder.setGopSize(gop.gopSize());
        }
        if (force_key) {
            encoder.forceKeyframe();
            ++report.stats.keyframes_forced;
            force_key = false;
        }

        auto encoded = encoder.encode(*input);
        if (!encoded)
            return encoded.status();

        const Frame::Type type = encoded->stats.type;
        if (type == Frame::Type::kIntra)
            gop_id = frame_id32;

        FrameSendInfo &info = sent[f];
        info.payload_bytes = encoded->bitstream.size();
        info.encode_profile = std::move(encoded->profile);

        if (overload_on) {
            // Effective encode latency: per-stage seconds from the
            // configured budget source (modelled device time by
            // default, measured host time in wall-clock mode),
            // scaled by the injected load. The watchdog checks each
            // stage against its soft-timeout share of the deadline
            // before the frame total is judged.
            const PipelineTiming timing =
                device_model.evaluate(info.encode_profile);
            const EffectiveLatency eff = effectiveEncodeLatency(
                timing, session_.overload, frame_id32);
            const double effective_s = eff.total_s;
            const bool stalled =
                budget_s > 0.0 &&
                eff.worst_stage_s >
                    budget_s *
                        session_.overload.stage_soft_timeout_fraction;
            const OverloadEvent event =
                stalled ? ladder_ctrl.onStall(effective_s)
                        : ladder_ctrl.onFrame(effective_s);
            const bool missed =
                budget_s > 0.0 && effective_s > budget_s;

            OverloadFrame record;
            record.frame_id = frame_id32;
            record.rung = rung;
            record.event = event;
            record.encode_s = effective_s;
            record.queue_delay_s = queue_delay_s;
            record.deadline_missed = missed;
            record.queue_depth = queue_depth;
            if (stalled)
                record.stalled_stage = eff.worst_stage;
            overload.ladder.push_back(std::move(record));
            ++overload.rung_occupancy[static_cast<int>(rung)];
            overload.encode_latency_s.push_back(effective_s);
            if (missed) {
                ++overload.deadline_misses;
                ++consecutive_misses;
                overload.max_consecutive_misses =
                    std::max(overload.max_consecutive_misses,
                             consecutive_misses);
            } else {
                consecutive_misses = 0;
            }
            if (stalled)
                ++overload.watchdog_stalls;
            if (ladder_ctrl.rung() != rung)
                ++overload.rung_transitions;
            clock_s += effective_s;
        }

        ChunkHeader base;
        base.frame_id = static_cast<std::uint32_t>(f);
        base.gop_id = gop_id;
        base.frame_type = type;

        // Sub-frame slicing: one chunk per MTU payload so a bit
        // flip costs a slice, not the frame. mtu_payload == 0
        // reproduces the v1 one-chunk-per-frame wire byte for byte.
        // Slices are views into encoded->bitstream, which stays
        // alive (and unmodified) through the NACK rounds below.
        std::vector<ChunkView> slices = sliceFramePayloadViews(
            base, ByteSpan(encoded->bitstream),
            session_.mtu_payload);

        // Parity FEC: every group_size data chunks emit parity —
        // one XOR chunk (single-loss recovery) or parity_rows RS
        // rows (up to m losses). Groups never span frames, so the
        // receiver can recover a loss before this frame's NACK
        // check runs. The geometry is fixed (fec.group_size /
        // parity_chunks), EWMA-driven (adaptive_fec), or negotiated
        // by the redundancy controller.
        const std::size_t group_size =
            session_.fec.enabled
                ? static_cast<std::size_t>(std::max(
                      redundancy_on ? negotiated.group_size
                      : session_.adaptive_fec
                          ? fec_ctrl.groupSize()
                          : session_.fec.group_size,
                      1))
                : 0;
        const FecScheme scheme = session_.fec.scheme;
        const int parity_rows =
            scheme == FecScheme::kReedSolomon
                ? std::max(redundancy_on
                               ? negotiated.parity_chunks
                               : session_.fec.parity_chunks,
                           1)
                : 1;
        const std::uint8_t fec_flags = static_cast<std::uint8_t>(
            kChunkFlagFec |
            (scheme == FecScheme::kReedSolomon ? kChunkFlagRsFec
                                               : 0));
        const std::size_t lanes_cfg =
            group_size != 0 && session_.fec_interleave > 1
                ? static_cast<std::size_t>(session_.fec_interleave)
                : 1;
        if (lanes_cfg <= 1) {
            for (std::size_t begin = 0; begin < slices.size();
                 begin += group_size == 0 ? slices.size()
                                          : group_size) {
                const std::size_t end =
                    group_size == 0
                        ? slices.size()
                        : std::min(begin + group_size,
                                   slices.size());
                if (group_size != 0) {
                    const std::uint16_t group_id =
                        next_fec_group++;
                    const std::uint8_t count =
                        static_cast<std::uint8_t>(end - begin);
                    for (std::size_t i = begin; i < end; ++i) {
                        slices[i].header.flags |= fec_flags;
                        slices[i].header.fec_group = group_id;
                        slices[i].header.fec_seq =
                            static_cast<std::uint8_t>(i - begin);
                        slices[i].header.fec_group_size = count;
                    }
                }
                for (std::size_t i = begin; i < end; ++i)
                    sendChunk(slices[i].header,
                              slices[i].payload, info);
                if (group_size != 0) {
                    ChunkHeader parity = base;
                    parity.flags = static_cast<std::uint8_t>(
                        kChunkFlagParity | fec_flags);
                    parity.fec_group =
                        slices[begin].header.fec_group;
                    parity.fec_group_size =
                        slices[begin].header.fec_group_size;
                    const std::vector<ChunkView> group(
                        slices.begin() +
                            static_cast<std::ptrdiff_t>(begin),
                        slices.begin() +
                            static_cast<std::ptrdiff_t>(end));
                    if (scheme == FecScheme::kReedSolomon) {
                        for (int row = 0; row < parity_rows;
                             ++row) {
                            parity.fec_seq = rsParitySeq(row);
                            buildRsParityInto(group, row,
                                              parity_buf);
                            sendChunk(parity,
                                      ByteSpan(parity_buf),
                                      info);
                            ++report.stats.parity_sent;
                        }
                    } else {
                        parity.fec_seq = kFecParitySeq;
                        buildFecParityInto(group, parity_buf);
                        sendChunk(parity, ByteSpan(parity_buf),
                                  info);
                        ++report.stats.parity_sent;
                    }
                }
            }
        } else {
            // Interleaved FEC: within each window of
            // group_size * lanes slices, slice j joins group
            // j % lanes. Consecutive wire chunks then belong to
            // different groups, so a drop burst of up to `lanes`
            // chunks costs each group at most one chunk — all
            // recoverable from parity. The receiver is untouched:
            // group membership travels in the chunk headers.
            const std::size_t window = group_size * lanes_cfg;
            for (std::size_t begin = 0; begin < slices.size();
                 begin += window) {
                const std::size_t end =
                    std::min(begin + window, slices.size());
                const std::size_t count = end - begin;
                const std::size_t lanes =
                    std::min(lanes_cfg, count);
                const std::uint16_t base_group = next_fec_group;
                next_fec_group = static_cast<std::uint16_t>(
                    next_fec_group + lanes);
                for (std::size_t i = begin; i < end; ++i) {
                    const std::size_t j = i - begin;
                    const std::size_t lane = j % lanes;
                    const std::size_t lane_size =
                        count / lanes +
                        (lane < count % lanes ? 1 : 0);
                    slices[i].header.flags |= fec_flags;
                    slices[i].header.fec_group =
                        static_cast<std::uint16_t>(base_group +
                                                   lane);
                    slices[i].header.fec_seq =
                        static_cast<std::uint8_t>(j / lanes);
                    slices[i].header.fec_group_size =
                        static_cast<std::uint8_t>(lane_size);
                }
                for (std::size_t i = begin; i < end; ++i)
                    sendChunk(slices[i].header,
                              slices[i].payload, info);
                for (std::size_t lane = 0; lane < lanes;
                     ++lane) {
                    std::vector<ChunkView> group;
                    for (std::size_t j = lane; j < count;
                         j += lanes)
                        group.push_back(slices[begin + j]);
                    ChunkHeader parity = base;
                    parity.flags = static_cast<std::uint8_t>(
                        kChunkFlagParity | fec_flags);
                    parity.fec_group = static_cast<std::uint16_t>(
                        base_group + lane);
                    parity.fec_group_size =
                        static_cast<std::uint8_t>(group.size());
                    if (scheme == FecScheme::kReedSolomon) {
                        for (int row = 0; row < parity_rows;
                             ++row) {
                            parity.fec_seq = rsParitySeq(row);
                            buildRsParityInto(group, row,
                                              parity_buf);
                            sendChunk(parity,
                                      ByteSpan(parity_buf),
                                      info);
                            ++report.stats.parity_sent;
                        }
                    } else {
                        parity.fec_seq = kFecParitySeq;
                        buildFecParityInto(group, parity_buf);
                        sendChunk(parity, ByteSpan(parity_buf),
                                  info);
                        ++report.stats.parity_sent;
                    }
                }
            }
        }

        // Bounded NACK rounds: each round resends only the slices
        // still missing (after FEC recovery), with exponential
        // backoff (modelled latency, no sleeping) from the shared
        // RetryPolicy.
        const RetryPolicy retry = session_.retransmitPolicy();
        for (int round = 1; round <= session_.max_retransmits;
             ++round) {
            std::vector<std::size_t> missing;
            for (std::size_t i = 0; i < slices.size(); ++i) {
                if (!receiver.hasSlice(
                        base.frame_id,
                        slices[i].header.slice_index))
                    missing.push_back(i);
            }
            if (missing.empty())
                break;
            ++info.nack_rounds;
            const double backoff = retry.backoffFor(round);
            info.backoff_s += backoff;
            report.stats.backoff_s += backoff;
            for (const std::size_t i : missing) {
                ChunkHeader resend = slices[i].header;
                resend.flags = static_cast<std::uint8_t>(
                    (resend.flags & ~kChunkFlagFec) |
                    kChunkFlagRetransmit);
                // The original FEC group is already closed; a
                // resent copy must not distort its accounting.
                resend.fec_group = 0;
                resend.fec_seq = 0;
                resend.fec_group_size = 0;
                ++report.stats.nacks;
                ++report.stats.retransmits;
                ++info.retransmits;
                sendChunk(resend, slices[i].payload, info);
            }
        }
        // Reorder-held copies may still surface later; the final
        // flush below catches them, but delivery feedback uses the
        // post-retry state (a held chunk is late, i.e. lost for
        // latency purposes but still usable for decode).
        const bool delivered = receiver.hasFrame(base.frame_id);
        if (delivered) {
            ++report.stats.frames_delivered;
        } else {
            ++report.stats.frames_lost;
            // Unrecovered loss: re-anchor at the next frame so a
            // lost I frame cannot poison the rest of its GOP.
            // Under the redundancy controller that decision is
            // its keyframe rule (unrecoverable loss only).
            if (session_.keyframe_on_loss && !redundancy_on)
                force_key = true;
        }
        if (redundancy_on) {
            // Loss report from the channel-stat deltas of this
            // frame's sends (data + parity + retransmits). Using
            // channel truth — not post-recovery receiver state —
            // keeps the burst estimate honest: losses the parity
            // absorbed must still count, or m would decay and
            // oscillate against the very bursts it covers.
            const ChannelStats &ch = channel.stats();
            const std::size_t sent_d = ch.chunks_in - fb_sent;
            const std::size_t lost_now =
                ch.dropped + ch.truncated + ch.bit_flipped;
            const std::size_t lost_d = lost_now - fb_lost;
            const std::size_t bursts_d = ch.bursts - fb_bursts;
            const std::size_t burst_drop_d =
                ch.burst_dropped - fb_burst_dropped;
            fb_sent = ch.chunks_in;
            fb_lost = lost_now;
            fb_bursts = ch.bursts;
            fb_burst_dropped = ch.burst_dropped;
            const int max_burst =
                bursts_d > 0
                    ? static_cast<int>(
                          (burst_drop_d + bursts_d - 1) /
                          bursts_d)
                    : (lost_d > 0 ? 1 : 0);
            redundancy.onFrameFeedback(
                static_cast<int>(sent_d),
                static_cast<int>(lost_d), max_burst, delivered);
            redundancy.onEncodedFrame(type, info.payload_bytes);
        } else {
            if (session_.adaptive_gop || session_.adaptive_fec)
                gop.onFrameDelivery(delivered);
            if (session_.adaptive_fec)
                fec_ctrl.onLossEstimate(gop.estimatedLoss(),
                                        delivered);
        }
    }

    for (const auto &arrival : channel.flush())
        receiver.ingest(arrival);

    overload.frames = overload.ladder.size();

    report.frames = receiver.decodeAll(
        static_cast<std::uint32_t>(frames.size()));
    report.wire = receiver.wireStats();
    report.fec = receiver.fecStats();

    for (SessionFrame &frame : report.frames) {
        FrameSendInfo &info = sent[frame.frame_id];
        frame.retransmits = info.retransmits;
        frame.nack_rounds = info.nack_rounds;
        frame.payload_bytes = info.payload_bytes;
        frame.wire_bytes = info.wire_bytes;
        frame.backoff_s = info.backoff_s;
        frame.encode_profile = std::move(info.encode_profile);
        report.stats.wire_bytes += info.wire_bytes;
        switch (frame.outcome) {
          case FrameOutcome::kOk:
            ++report.stats.frames_ok;
            break;
          case FrameOutcome::kResynced:
            ++report.stats.frames_resynced;
            break;
          case FrameOutcome::kConcealed:
            ++report.stats.frames_concealed;
            break;
          case FrameOutcome::kSkipped:
            ++report.stats.frames_skipped;
            break;
        }
    }
    return report;
}

}  // namespace edgepcc
