#include "edgepcc/stream/stream_session.h"

#include <utility>

#include "edgepcc/common/trace.h"
#include "edgepcc/interframe/block_matcher.h"

namespace edgepcc {

const char *
frameOutcomeName(FrameOutcome outcome)
{
    switch (outcome) {
      case FrameOutcome::kOk:
        return "ok";
      case FrameOutcome::kResynced:
        return "resynced";
      case FrameOutcome::kConcealed:
        return "concealed";
      case FrameOutcome::kSkipped:
        return "skipped";
    }
    return "unknown";
}

double
SessionStats::okOrConcealedFraction() const
{
    const std::size_t total = totalFrames();
    return total == 0
               ? 0.0
               : static_cast<double>(total - frames_skipped) /
                     static_cast<double>(total);
}

// -----------------------------------------------------------------
// StreamReceiver
// -----------------------------------------------------------------

WireScanStats
StreamReceiver::ingest(const std::vector<std::uint8_t> &wire)
{
    WireScanStats stats;
    std::vector<ParsedChunk> chunks = scanWire(wire, &stats);
    for (ParsedChunk &chunk : chunks) {
        // First intact copy wins; duplicates and retransmissions of
        // an already-buffered frame are dropped here.
        by_frame_.emplace(chunk.header.frame_id,
                          std::move(chunk));
    }
    wire_.bytes_scanned += stats.bytes_scanned;
    wire_.bytes_skipped += stats.bytes_skipped;
    wire_.chunks_ok += stats.chunks_ok;
    wire_.chunks_bad_crc += stats.chunks_bad_crc;
    wire_.chunks_truncated += stats.chunks_truncated;
    return stats;
}

bool
StreamReceiver::hasFrame(std::uint32_t frame_id) const
{
    return by_frame_.count(frame_id) != 0;
}

std::vector<std::uint32_t>
StreamReceiver::missingFrames(std::uint32_t expected_frames) const
{
    std::vector<std::uint32_t> missing;
    for (std::uint32_t id = 0; id < expected_frames; ++id) {
        if (by_frame_.count(id) == 0)
            missing.push_back(id);
    }
    return missing;
}

std::vector<SessionFrame>
StreamReceiver::decodeAll(std::uint32_t expected_frames)
{
    ScopedTrace trace("session.decode");
    std::vector<SessionFrame> results;
    results.reserve(expected_frames);

    // Ladder state: the last presentable cloud (freeze/conceal
    // source), the GOP id of the last intact I frame (reference
    // validity), and whether damage occurred since the last intact
    // I frame (drives the resynced outcome).
    std::optional<VoxelCloud> last_good;
    std::optional<std::uint32_t> good_intra_gop;
    bool damaged = false;

    const auto degrade = [&](SessionFrame &result) {
        if (last_good.has_value()) {
            result.outcome = FrameOutcome::kConcealed;
            result.cloud = *last_good;
        } else {
            result.outcome = FrameOutcome::kSkipped;
        }
        damaged = true;
    };

    for (std::uint32_t id = 0; id < expected_frames; ++id) {
        SessionFrame result;
        result.frame_id = id;

        const auto it = by_frame_.find(id);
        if (it == by_frame_.end()) {
            // Chunk never arrived intact: freeze the last good
            // frame, or skip when there has not been one yet.
            degrade(result);
            results.push_back(std::move(result));
            continue;
        }
        const ParsedChunk &chunk = it->second;
        result.type = chunk.header.frame_type;
        result.delivered = true;

        if (chunk.header.frame_type == Frame::Type::kIntra) {
            auto decoded = decoder_.decode(chunk.payload);
            if (decoded.hasValue()) {
                result.outcome = damaged
                                     ? FrameOutcome::kResynced
                                     : FrameOutcome::kOk;
                result.cloud = std::move(decoded->cloud);
                last_good = result.cloud;
                good_intra_gop = chunk.header.gop_id;
                damaged = false;
            } else {
                // The payload cleared the transport CRC but still
                // failed the codec's own validation; treat like a
                // lost chunk.
                degrade(result);
            }
            results.push_back(std::move(result));
            continue;
        }

        // P frame: decodable only when its anchor I frame was
        // decoded intact. Otherwise the decoder's reference is
        // stale (silent corruption) or absent — promote to a
        // geometry-only decode with concealed attributes.
        const bool reference_ok =
            good_intra_gop.has_value() &&
            *good_intra_gop == chunk.header.gop_id &&
            decoder_.hasReference();
        if (reference_ok) {
            auto decoded = decoder_.decode(chunk.payload);
            if (decoded.hasValue()) {
                result.outcome = FrameOutcome::kOk;
                result.cloud = std::move(decoded->cloud);
                last_good = result.cloud;
                results.push_back(std::move(result));
                continue;
            }
        }
        bool concealed = false;
        auto promoted = decoder_.decodePromoted(
            chunk.payload,
            last_good.has_value() ? &*last_good : nullptr,
            &concealed);
        if (promoted.hasValue()) {
            result.outcome = FrameOutcome::kConcealed;
            result.cloud = std::move(promoted->cloud);
            // Geometry is current even though attributes are
            // borrowed: better freeze source than an older frame.
            last_good = result.cloud;
            damaged = true;
        } else {
            degrade(result);
        }
        results.push_back(std::move(result));
    }
    return results;
}

// -----------------------------------------------------------------
// StreamSession
// -----------------------------------------------------------------

StreamSession::StreamSession(CodecConfig codec,
                             SessionConfig session)
    : codec_(std::move(codec)), session_(std::move(session))
{
}

Expected<SessionReport>
StreamSession::run(const std::vector<VoxelCloud> &frames)
{
    if (frames.empty())
        return invalidArgument("StreamSession::run: no frames");

    ScopedTrace trace("session.run");
    VideoEncoder encoder(codec_);
    LossyChannel channel(session_.channel);
    StreamReceiver receiver;
    AdaptiveGopController gop(session_.gop, codec_.gop_size);

    SessionReport report;
    report.stats = SessionStats{};

    std::uint32_t next_sequence = 0;
    std::uint32_t gop_id = 0;
    bool force_key = false;
    std::vector<int> retransmits_per_frame(frames.size(), 0);

    for (std::size_t f = 0; f < frames.size(); ++f) {
        if (session_.adaptive_gop)
            encoder.setGopSize(gop.gopSize());
        if (force_key) {
            encoder.forceKeyframe();
            ++report.stats.keyframes_forced;
            force_key = false;
        }

        auto encoded = encoder.encode(frames[f]);
        if (!encoded)
            return encoded.status();

        const Frame::Type type = encoded->stats.type;
        if (type == Frame::Type::kIntra)
            gop_id = static_cast<std::uint32_t>(f);

        ChunkHeader header;
        header.frame_id = static_cast<std::uint32_t>(f);
        header.gop_id = gop_id;
        header.frame_type = type;

        // First transmission plus bounded NACK-driven retries with
        // exponential backoff (modelled latency, no sleeping).
        bool delivered = false;
        for (int attempt = 0;
             attempt <= session_.max_retransmits && !delivered;
             ++attempt) {
            header.sequence = next_sequence++;
            if (attempt > 0) {
                header.flags = kChunkFlagRetransmit;
                ++report.stats.nacks;
                ++report.stats.retransmits;
                retransmits_per_frame[f] = attempt;
                report.stats.backoff_s +=
                    session_.backoff_ms / 1e3 *
                    static_cast<double>(1 << (attempt - 1));
            }
            const std::vector<std::uint8_t> chunk =
                serializeChunk(header, encoded->bitstream);
            ++report.stats.chunks_sent;
            for (const auto &arrival : channel.transmit(chunk))
                receiver.ingest(arrival);
            delivered =
                receiver.hasFrame(header.frame_id);
        }
        // Reorder-held copies may still surface later; the final
        // flush below catches them, but delivery feedback uses the
        // post-retry state (a held chunk is late, i.e. lost for
        // latency purposes but still usable for decode).
        if (delivered) {
            ++report.stats.frames_delivered;
        } else {
            ++report.stats.frames_lost;
            // Unrecovered loss: re-anchor at the next frame so a
            // lost I frame cannot poison the rest of its GOP.
            if (session_.keyframe_on_loss)
                force_key = true;
        }
        if (session_.adaptive_gop)
            gop.onFrameDelivery(delivered);
    }

    for (const auto &arrival : channel.flush())
        receiver.ingest(arrival);

    report.frames = receiver.decodeAll(
        static_cast<std::uint32_t>(frames.size()));
    report.wire = receiver.wireStats();

    for (SessionFrame &frame : report.frames) {
        frame.retransmits =
            retransmits_per_frame[frame.frame_id];
        switch (frame.outcome) {
          case FrameOutcome::kOk:
            ++report.stats.frames_ok;
            break;
          case FrameOutcome::kResynced:
            ++report.stats.frames_resynced;
            break;
          case FrameOutcome::kConcealed:
            ++report.stats.frames_concealed;
            break;
          case FrameOutcome::kSkipped:
            ++report.stats.frames_skipped;
            break;
        }
    }
    return report;
}

}  // namespace edgepcc
