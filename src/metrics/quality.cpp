#include "edgepcc/metrics/quality.h"

#include <cmath>
#include <limits>

#include "edgepcc/geometry/grid_hash.h"

namespace edgepcc {

namespace {

double
toPsnr(double mse, double peak)
{
    if (mse <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(peak * peak / mse);
}

/** One-directional mean squared NN distance (a -> b). */
double
directionalGeometryMse(const VoxelCloud &a, const GridHash &b_hash,
                       const VoxelCloud &b)
{
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto nn =
            b_hash.findNearest(a.x()[i], a.y()[i], a.z()[i], 8);
        if (!nn)
            continue;
        const double dx = static_cast<double>(a.x()[i]) -
                          static_cast<double>(b.x()[*nn]);
        const double dy = static_cast<double>(a.y()[i]) -
                          static_cast<double>(b.y()[*nn]);
        const double dz = static_cast<double>(a.z()[i]) -
                          static_cast<double>(b.z()[*nn]);
        sum += dx * dx + dy * dy + dz * dz;
        ++counted;
    }
    return counted == 0 ? 0.0
                        : sum / static_cast<double>(counted);
}

}  // namespace

AttrQuality
attributePsnr(const VoxelCloud &original, const VoxelCloud &decoded)
{
    AttrQuality quality;
    if (original.empty() || decoded.empty())
        return quality;

    const GridHash hash(decoded);
    double sum = 0.0;
    for (std::size_t i = 0; i < original.size(); ++i) {
        const auto nn = hash.findNearest(
            original.x()[i], original.y()[i], original.z()[i], 8);
        if (!nn) {
            ++quality.unmatched_points;
            continue;
        }
        const double dr =
            static_cast<double>(original.r()[i]) -
            static_cast<double>(decoded.r()[*nn]);
        const double dg =
            static_cast<double>(original.g()[i]) -
            static_cast<double>(decoded.g()[*nn]);
        const double db =
            static_cast<double>(original.b()[i]) -
            static_cast<double>(decoded.b()[*nn]);
        sum += dr * dr + dg * dg + db * db;
        ++quality.matched_points;
    }
    if (quality.matched_points > 0) {
        quality.mse =
            sum /
            (3.0 * static_cast<double>(quality.matched_points));
    }
    quality.psnr = toPsnr(quality.mse, 255.0);
    return quality;
}

GeometryQuality
geometryPsnrD1(const VoxelCloud &original, const VoxelCloud &decoded)
{
    GeometryQuality quality;
    if (original.empty() || decoded.empty())
        return quality;
    const GridHash original_hash(original);
    const GridHash decoded_hash(decoded);
    const double forward =
        directionalGeometryMse(original, decoded_hash, decoded);
    const double backward =
        directionalGeometryMse(decoded, original_hash, original);
    quality.mse = std::max(forward, backward);
    const double peak =
        static_cast<double>(original.gridSize() - 1);
    quality.psnr = toPsnr(quality.mse, peak);
    return quality;
}

}  // namespace edgepcc
