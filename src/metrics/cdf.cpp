#include "edgepcc/metrics/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace edgepcc {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples))
{
    std::sort(samples_.begin(), samples_.end());
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto index = static_cast<std::size_t>(std::llround(
        clamped * static_cast<double>(samples_.size() - 1)));
    return samples_[index];
}

double
EmpiricalCdf::min() const
{
    return samples_.empty() ? 0.0 : samples_.front();
}

double
EmpiricalCdf::max() const
{
    return samples_.empty() ? 0.0 : samples_.back();
}

double
EmpiricalCdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

}  // namespace edgepcc
