#include "edgepcc/common/gf256.h"

namespace edgepcc {

namespace {

Gf256Tables
buildTables()
{
    Gf256Tables t{};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
        t.exp[i] = x;
        t.log[x] = static_cast<std::uint8_t>(i);
        // x *= 2 with reduction by 0x11d.
        const bool carry = (x & 0x80u) != 0;
        x = static_cast<std::uint8_t>(x << 1);
        if (carry)
            x ^= 0x1du;
    }
    // Mirror the cycle so exp[log a + log b] needs no modulo
    // (indices reach at most 254 + 254 = 508).
    for (int i = 255; i < 510; ++i)
        t.exp[i] = t.exp[i - 255];
    return t;
}

}  // namespace

const Gf256Tables &
gf256Tables()
{
    static const Gf256Tables tables = buildTables();
    return tables;
}

std::uint8_t
gfMulSlow(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t product = 0;
    while (b != 0) {
        if (b & 1u)
            product ^= a;
        const bool carry = (a & 0x80u) != 0;
        a = static_cast<std::uint8_t>(a << 1);
        if (carry)
            a ^= 0x1du;
        b >>= 1;
    }
    return product;
}

}  // namespace edgepcc
