/**
 * @file
 * Runtime ISA selection for edgepcc/platform/simd.h.
 *
 * Lives in edgepcc::common (not src/platform/) so the CRC32C kernel
 * in this module can dispatch without creating a platform <-> common
 * library cycle; see the header comment for the full contract.
 */

#include "edgepcc/platform/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if EDGEPCC_SIMD_X86
#include <immintrin.h>
#endif

namespace edgepcc {

namespace {

/** -1 = no test override; otherwise a SimdLevel value. */
std::atomic<int> g_test_override{-1};

SimdLevel
computeDetectedLevel()
{
#if EDGEPCC_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse4.2"))
        return SimdLevel::kSse4;
#endif
    return SimdLevel::kScalar;
}

/** Startup selection: detected level clamped by EDGEPCC_SIMD. */
SimdLevel
computeStartupLevel()
{
    SimdLevel level = detectSimdLevel();
    if (const char *env = std::getenv("EDGEPCC_SIMD")) {
        SimdLevel requested = SimdLevel::kScalar;
        if (simdLevelFromName(env, &requested) && requested < level)
            level = requested;
    }
    return level;
}

}  // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kSse4:
        return "sse4";
      case SimdLevel::kAvx2:
        return "avx2";
      case SimdLevel::kScalar:
      default:
        return "scalar";
    }
}

bool
simdLevelFromName(const char *name, SimdLevel *out)
{
    if (name == nullptr || out == nullptr)
        return false;
    if (std::strcmp(name, "scalar") == 0) {
        *out = SimdLevel::kScalar;
        return true;
    }
    if (std::strcmp(name, "sse4") == 0) {
        *out = SimdLevel::kSse4;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        *out = SimdLevel::kAvx2;
        return true;
    }
    return false;
}

SimdLevel
detectSimdLevel()
{
    static const SimdLevel detected = computeDetectedLevel();
    return detected;
}

SimdLevel
activeSimdLevel()
{
    const int forced =
        g_test_override.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<SimdLevel>(forced);
    static const SimdLevel startup = computeStartupLevel();
    return startup;
}

SimdLevel
setSimdLevelForTesting(SimdLevel level)
{
    const SimdLevel detected = detectSimdLevel();
    if (level > detected)
        level = detected;
    g_test_override.store(static_cast<int>(level),
                          std::memory_order_relaxed);
    return level;
}

void
clearSimdLevelForTesting()
{
    g_test_override.store(-1, std::memory_order_relaxed);
}

namespace {

void
xorBytesScalar(std::uint8_t *dst, const std::uint8_t *src,
               std::size_t n)
{
    std::size_t i = 0;
    // Word-at-a-time scalar baseline; exact byte semantics.
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a;
        std::uint64_t b;
        std::memcpy(&a, dst + i, 8);
        std::memcpy(&b, src + i, 8);
        a ^= b;
        std::memcpy(dst + i, &a, 8);
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

#if EDGEPCC_SIMD_X86

__attribute__((target("sse4.2"))) void
xorBytesSse4(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_xor_si128(a, b));
    }
    xorBytesScalar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void
xorBytesAvx2(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t n)
{
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_xor_si256(a, b));
    }
    xorBytesScalar(dst + i, src + i, n - i);
}

#endif  // EDGEPCC_SIMD_X86

}  // namespace

void
xorBytes(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
#if EDGEPCC_SIMD_X86
    switch (activeSimdLevel()) {
      case SimdLevel::kAvx2:
        xorBytesAvx2(dst, src, n);
        return;
      case SimdLevel::kSse4:
        xorBytesSse4(dst, src, n);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    xorBytesScalar(dst, src, n);
}

}  // namespace edgepcc
