/**
 * @file
 * Runtime ISA selection for edgepcc/platform/simd.h.
 *
 * Lives in edgepcc::common (not src/platform/) so the CRC32C kernel
 * in this module can dispatch without creating a platform <-> common
 * library cycle; see the header comment for the full contract.
 */

#include "edgepcc/platform/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "edgepcc/common/gf256.h"

#if EDGEPCC_SIMD_X86
#include <immintrin.h>
#endif

namespace edgepcc {

namespace {

/** -1 = no test override; otherwise a SimdLevel value. */
std::atomic<int> g_test_override{-1};

SimdLevel
computeDetectedLevel()
{
#if EDGEPCC_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse4.2"))
        return SimdLevel::kSse4;
#endif
    return SimdLevel::kScalar;
}

/** Startup selection: detected level clamped by EDGEPCC_SIMD. */
SimdLevel
computeStartupLevel()
{
    SimdLevel level = detectSimdLevel();
    if (const char *env = std::getenv("EDGEPCC_SIMD")) {
        SimdLevel requested = SimdLevel::kScalar;
        if (simdLevelFromName(env, &requested) && requested < level)
            level = requested;
    }
    return level;
}

}  // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kSse4:
        return "sse4";
      case SimdLevel::kAvx2:
        return "avx2";
      case SimdLevel::kScalar:
      default:
        return "scalar";
    }
}

bool
simdLevelFromName(const char *name, SimdLevel *out)
{
    if (name == nullptr || out == nullptr)
        return false;
    if (std::strcmp(name, "scalar") == 0) {
        *out = SimdLevel::kScalar;
        return true;
    }
    if (std::strcmp(name, "sse4") == 0) {
        *out = SimdLevel::kSse4;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        *out = SimdLevel::kAvx2;
        return true;
    }
    return false;
}

SimdLevel
detectSimdLevel()
{
    static const SimdLevel detected = computeDetectedLevel();
    return detected;
}

SimdLevel
activeSimdLevel()
{
    const int forced =
        g_test_override.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<SimdLevel>(forced);
    static const SimdLevel startup = computeStartupLevel();
    return startup;
}

SimdLevel
setSimdLevelForTesting(SimdLevel level)
{
    const SimdLevel detected = detectSimdLevel();
    if (level > detected)
        level = detected;
    g_test_override.store(static_cast<int>(level),
                          std::memory_order_relaxed);
    return level;
}

void
clearSimdLevelForTesting()
{
    g_test_override.store(-1, std::memory_order_relaxed);
}

namespace {

void
xorBytesScalar(std::uint8_t *dst, const std::uint8_t *src,
               std::size_t n)
{
    std::size_t i = 0;
    // Word-at-a-time scalar baseline; exact byte semantics.
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a;
        std::uint64_t b;
        std::memcpy(&a, dst + i, 8);
        std::memcpy(&b, src + i, 8);
        a ^= b;
        std::memcpy(dst + i, &a, 8);
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

#if EDGEPCC_SIMD_X86

__attribute__((target("sse4.2"))) void
xorBytesSse4(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_xor_si128(a, b));
    }
    xorBytesScalar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void
xorBytesAvx2(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t n)
{
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_xor_si256(a, b));
    }
    xorBytesScalar(dst + i, src + i, n - i);
}

#endif  // EDGEPCC_SIMD_X86

}  // namespace

void
xorBytes(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
#if EDGEPCC_SIMD_X86
    switch (activeSimdLevel()) {
      case SimdLevel::kAvx2:
        xorBytesAvx2(dst, src, n);
        return;
      case SimdLevel::kSse4:
        xorBytesSse4(dst, src, n);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    xorBytesScalar(dst, src, n);
}

namespace {

/**
 * 16-entry nibble product tables for one coefficient: for byte
 * b = hi<<4 | lo, coeff*b = lo_table[lo] ^ hi_table[hi] (GF
 * multiplication distributes over XOR). Built per kernel call —
 * 32 table multiplies against parity rows that are KBs long.
 */
struct GfNibbleTables {
    std::uint8_t lo[16];
    std::uint8_t hi[16];
};

GfNibbleTables
buildNibbleTables(std::uint8_t coeff)
{
    GfNibbleTables t;
    for (std::uint8_t v = 0; v < 16; ++v) {
        t.lo[v] = gfMul(coeff, v);
        t.hi[v] = gfMul(coeff, static_cast<std::uint8_t>(v << 4));
    }
    return t;
}

void
gfMulAddBytesScalar(std::uint8_t *dst, const std::uint8_t *src,
                    std::uint8_t coeff, std::size_t n)
{
    // The nibble decomposition (not a log/exp lookup per byte) is
    // the scalar reference so every dispatch level computes the
    // exact same table-derived products.
    const GfNibbleTables t = buildNibbleTables(coeff);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t b = src[i];
        dst[i] ^= t.lo[b & 0x0fu] ^ t.hi[b >> 4];
    }
}

#if EDGEPCC_SIMD_X86

__attribute__((target("sse4.2"))) void
gfMulAddBytesSse4(std::uint8_t *dst, const std::uint8_t *src,
                  std::uint8_t coeff, std::size_t n)
{
    const GfNibbleTables t = buildNibbleTables(coeff);
    const __m128i lo_tbl = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(t.lo));
    const __m128i hi_tbl = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(t.hi));
    const __m128i nib = _mm_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        const __m128i lo = _mm_shuffle_epi8(
            lo_tbl, _mm_and_si128(s, nib));
        const __m128i hi = _mm_shuffle_epi8(
            hi_tbl,
            _mm_and_si128(_mm_srli_epi16(s, 4), nib));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(dst + i),
            _mm_xor_si128(d, _mm_xor_si128(lo, hi)));
    }
    gfMulAddBytesScalar(dst + i, src + i, coeff, n - i);
}

__attribute__((target("avx2"))) void
gfMulAddBytesAvx2(std::uint8_t *dst, const std::uint8_t *src,
                  std::uint8_t coeff, std::size_t n)
{
    const GfNibbleTables t = buildNibbleTables(coeff);
    const __m256i lo_tbl = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(t.lo)));
    const __m256i hi_tbl = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(t.hi)));
    const __m256i nib = _mm256_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i lo = _mm256_shuffle_epi8(
            lo_tbl, _mm256_and_si256(s, nib));
        const __m256i hi = _mm256_shuffle_epi8(
            hi_tbl,
            _mm256_and_si256(_mm256_srli_epi16(s, 4), nib));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_xor_si256(d, _mm256_xor_si256(lo, hi)));
    }
    gfMulAddBytesScalar(dst + i, src + i, coeff, n - i);
}

#endif  // EDGEPCC_SIMD_X86

}  // namespace

void
gfMulAddBytes(std::uint8_t *dst, const std::uint8_t *src,
              std::uint8_t coeff, std::size_t n)
{
    if (coeff == 0)
        return;
    if (coeff == 1) {
        xorBytes(dst, src, n);
        return;
    }
#if EDGEPCC_SIMD_X86
    switch (activeSimdLevel()) {
      case SimdLevel::kAvx2:
        gfMulAddBytesAvx2(dst, src, coeff, n);
        return;
      case SimdLevel::kSse4:
        gfMulAddBytesSse4(dst, src, coeff, n);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    gfMulAddBytesScalar(dst, src, coeff, n);
}

}  // namespace edgepcc
