#include "edgepcc/common/crc32c.h"

#include <array>

namespace edgepcc {

namespace {

/** Reflected CRC32C polynomial. */
constexpr std::uint32_t kPoly = 0x82F63B78u;

/** Byte-at-a-time lookup table, built once at static init. */
std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint32_t crc = byte;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
        table[byte] = crc;
    }
    return table;
}

}  // namespace

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t size,
       std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table =
        buildTable();
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xffu];
    return ~crc;
}

}  // namespace edgepcc
