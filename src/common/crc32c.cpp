#include "edgepcc/common/crc32c.h"

#include <array>
#include <cstring>

#include "edgepcc/platform/simd.h"

#if EDGEPCC_SIMD_X86
#include <immintrin.h>
#endif

namespace edgepcc {

namespace {

/** Reflected CRC32C polynomial. */
constexpr std::uint32_t kPoly = 0x82F63B78u;

/** Byte-at-a-time lookup table, built once at static init. */
std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint32_t crc = byte;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
        table[byte] = crc;
    }
    return table;
}

/** Table-driven reference path over the raw (inverted) state. */
std::uint32_t
crc32cScalar(const std::uint8_t *data, std::size_t size,
             std::uint32_t crc)
{
    static const std::array<std::uint32_t, 256> table =
        buildTable();
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xffu];
    return crc;
}

#if EDGEPCC_SIMD_X86

/**
 * SSE4.2 hardware path. The CRC32 instruction implements the same
 * reflected Castagnoli polynomial as the table, so the result is
 * byte-identical — 8 bytes per instruction instead of one table
 * lookup per byte.
 */
__attribute__((target("sse4.2"))) std::uint32_t
crc32cHw(const std::uint8_t *data, std::size_t size,
         std::uint32_t crc)
{
    std::uint64_t state = crc;
    while (size >= 8) {
        std::uint64_t word;
        std::memcpy(&word, data, 8);
        state = _mm_crc32_u64(state, word);
        data += 8;
        size -= 8;
    }
    auto state32 = static_cast<std::uint32_t>(state);
    while (size > 0) {
        state32 = _mm_crc32_u8(state32, *data);
        ++data;
        --size;
    }
    return state32;
}

#endif  // EDGEPCC_SIMD_X86

}  // namespace

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t size,
       std::uint32_t seed)
{
    const std::uint32_t crc = ~seed;
#if EDGEPCC_SIMD_X86
    if (activeSimdLevel() >= SimdLevel::kSse4)
        return ~crc32cHw(data, size, crc);
#endif
    return ~crc32cScalar(data, size, crc);
}

}  // namespace edgepcc
