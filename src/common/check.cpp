#include "edgepcc/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace edgepcc {
namespace detail {

std::string
checkMessage(const char *file, int line, const char *message)
{
    // Strip the directory prefix: diagnostics should be stable
    // across checkouts and short in logs.
    const char *base = file;
    for (const char *p = file; *p != '\0'; ++p) {
        if (*p == '/' || *p == '\\')
            base = p + 1;
    }
    return std::string(base) + ":" + std::to_string(line) + ": " +
           message;
}

void
dcheckFail(const char *file, int line, const char *condition)
{
    (void)std::fprintf(stderr, "%s:%d: DCHECK failed: %s\n", file, line,
                 condition);
    (void)std::fflush(stderr);
    std::abort();
}

}  // namespace detail
}  // namespace edgepcc
