#include "edgepcc/common/retry.h"

#include <algorithm>

namespace edgepcc {

namespace {

/** splitmix64: one deterministic draw per (seed, attempt) pair, so
 *  jitter does not depend on evaluation order. */
std::uint64_t
mix64(std::uint64_t v)
{
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
}

}  // namespace

double
RetryPolicy::jitterFor(int attempt) const
{
    if (jitter <= 0.0)
        return 1.0;
    const std::uint64_t draw = mix64(
        seed ^ (0xbac0ffull + static_cast<std::uint64_t>(attempt)));
    // Map the top 53 bits onto [0, 1).
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
    return 1.0 - jitter + 2.0 * jitter * unit;
}

double
RetryPolicy::backoffFor(int attempt) const
{
    attempt = std::max(attempt, 1);
    // Iterative doubling keeps the values bit-identical to the
    // historical `initial * (1 << (attempt - 1))` NACK formula for
    // multiplier == 2 (no pow() rounding differences).
    double backoff = initial_backoff_s;
    for (int i = 1; i < attempt && backoff < max_backoff_s; ++i)
        backoff *= multiplier;
    backoff = std::min(backoff, max_backoff_s);
    return backoff * jitterFor(attempt);
}

double
RetryPolicy::totalBackoff(int attempts) const
{
    double total = 0.0;
    for (int attempt = 1; attempt <= attempts; ++attempt)
        total += backoffFor(attempt);
    return total;
}

}  // namespace edgepcc
