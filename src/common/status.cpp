#include "edgepcc/common/status.h"

namespace edgepcc {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kDataLoss: return "DATA_LOSS";
      case StatusCode::kCorruptBitstream: return "CORRUPT_BITSTREAM";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kIoError: return "IO_ERROR";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

Status
invalidArgument(std::string message)
{
    return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status
outOfRange(std::string message)
{
    return Status(StatusCode::kOutOfRange, std::move(message));
}

Status
failedPrecondition(std::string message)
{
    return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status
dataLoss(std::string message)
{
    return Status(StatusCode::kDataLoss, std::move(message));
}

Status
corruptBitstream(std::string message)
{
    return Status(StatusCode::kCorruptBitstream, std::move(message));
}

Status
unimplemented(std::string message)
{
    return Status(StatusCode::kUnimplemented, std::move(message));
}

Status
internalError(std::string message)
{
    return Status(StatusCode::kInternal, std::move(message));
}

Status
notFound(std::string message)
{
    return Status(StatusCode::kNotFound, std::move(message));
}

Status
ioError(std::string message)
{
    return Status(StatusCode::kIoError, std::move(message));
}

Status
resourceExhausted(std::string message)
{
    return Status(StatusCode::kResourceExhausted,
                  std::move(message));
}

}  // namespace edgepcc
