#include "edgepcc/common/rng.h"

#include <cmath>

namespace edgepcc {

double
Rng::gaussian()
{
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform() * 2.0 - 1.0;
        v = uniform() * 2.0 - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
}

}  // namespace edgepcc
