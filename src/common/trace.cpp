#include "edgepcc/common/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

namespace edgepcc {

namespace {

/** Fixed origin so event timestamps stay small and positive. */
std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::atomic<std::uint32_t> next_thread_id{0};

/** JSON string escape for span names (quotes, backslash, control). */
void
writeJsonString(std::ostream &out, const char *text)
{
    out << '"';
    for (const char *p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                << "0123456789abcdef"[c & 0xf];
        } else {
            out << c;
        }
    }
    out << '"';
}

}  // namespace

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

double
Tracer::nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - traceEpoch())
        .count();
}

std::uint32_t
Tracer::currentThreadId()
{
    thread_local const std::uint32_t id =
        next_thread_id.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
Tracer::record(const char *name, double start_s, double dur_s)
{
    TraceEvent event;
    event.name = name;
    event.start_s = start_s;
    event.dur_s = dur_s;
    event.tid = currentThreadId();
    MutexLock lock(mutex_);
    events_.push_back(event);
}

std::vector<TraceEvent>
Tracer::events() const
{
    MutexLock lock(mutex_);
    return events_;
}

void
Tracer::clear()
{
    MutexLock lock(mutex_);
    events_.clear();
}

std::size_t
Tracer::eventCount() const
{
    MutexLock lock(mutex_);
    return events_.size();
}

void
writeChromeTrace(const std::vector<TraceEvent> &events,
                 std::ostream &out)
{
    // Complete ("ph":"X") events with microsecond timestamps, the
    // format chrome://tracing and Perfetto ingest directly.
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &event : events) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"name\":";
        writeJsonString(out, event.name);
        out << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid
            << ",\"ts\":" << event.start_s * 1e6
            << ",\"dur\":" << event.dur_s * 1e6 << '}';
    }
    out << "],\"displayTimeUnit\":\"ms\"}\n";
}

PercentileStats
computePercentiles(std::vector<double> samples)
{
    PercentileStats stats;
    if (samples.empty())
        return stats;
    std::sort(samples.begin(), samples.end());
    stats.count = samples.size();
    for (const double sample : samples)
        stats.total += sample;
    stats.mean = stats.total / static_cast<double>(stats.count);
    stats.max = samples.back();
    const auto at_quantile = [&](double q) {
        // Nearest-rank on the sorted samples.
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(samples.size())));
        const std::size_t index = rank == 0 ? 0 : rank - 1;
        return samples[std::min(index, samples.size() - 1)];
    };
    stats.p50 = at_quantile(0.50);
    stats.p95 = at_quantile(0.95);
    stats.p99 = at_quantile(0.99);
    return stats;
}

void
StageStatsAggregator::addStageLocked(const std::string &name,
                                     double host_s, double model_s,
                                     std::uint64_t ops,
                                     std::uint64_t bytes)
{
    auto it = stages_.find(name);
    if (it == stages_.end()) {
        it = stages_.emplace(name, Accum{}).first;
        order_.push_back(name);
    }
    Accum &accum = it->second;
    accum.host_samples.push_back(host_s);
    if (model_s >= 0.0)
        accum.model_samples.push_back(model_s);
    accum.ops += ops;
    accum.bytes += bytes;
}

void
StageStatsAggregator::addStage(const std::string &name, double host_s,
                               double model_s, std::uint64_t ops,
                               std::uint64_t bytes)
{
    MutexLock lock(mutex_);
    addStageLocked(name, host_s, model_s, ops, bytes);
}

void
StageStatsAggregator::addProfile(const PipelineProfile &profile)
{
    // One lock for the whole frame so its stages land adjacently
    // even when several sessions aggregate concurrently.
    MutexLock lock(mutex_);
    for (const StageProfile &stage : profile.stages) {
        addStageLocked(stage.name, stage.host_seconds, -1.0,
                       stage.totalOps(), stage.totalBytes());
    }
}

std::vector<StageStatsAggregator::StageSummary>
StageStatsAggregator::summaries() const
{
    MutexLock lock(mutex_);
    std::vector<StageSummary> out;
    out.reserve(order_.size());
    for (const std::string &name : order_) {
        const Accum &accum = stages_.at(name);
        StageSummary summary;
        summary.name = name;
        summary.frames = accum.host_samples.size();
        summary.host_s = computePercentiles(accum.host_samples);
        summary.model_s = computePercentiles(accum.model_samples);
        summary.total_ops = accum.ops;
        summary.total_bytes = accum.bytes;
        out.push_back(std::move(summary));
    }
    return out;
}

}  // namespace edgepcc
