#include "edgepcc/common/work_counters.h"

#include <chrono>

namespace edgepcc {

const char *
execResourceName(ExecResource resource)
{
    switch (resource) {
      case ExecResource::kCpuSequential: return "cpu-seq";
      case ExecResource::kCpuParallel: return "cpu-par";
      case ExecResource::kGpu: return "gpu";
    }
    return "?";
}

std::uint64_t
StageProfile::totalOps() const
{
    std::uint64_t total = 0;
    for (const auto &kernel : kernels)
        total += kernel.ops;
    return total;
}

std::uint64_t
StageProfile::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &kernel : kernels)
        total += kernel.bytes;
    return total;
}

double
PipelineProfile::hostSeconds() const
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.host_seconds;
    return total;
}

double
PipelineProfile::hostSecondsWithPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (const auto &stage : stages) {
        if (stage.name.rfind(prefix, 0) == 0)
            total += stage.host_seconds;
    }
    return total;
}

double
WorkRecorder::nowSeconds()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

void
WorkRecorder::beginStage(const std::string &name)
{
    if (stage_open_)
        endStage();
    open_stage_ = StageProfile{};
    open_stage_.name = name;
    open_stage_start_ = nowSeconds();
    stage_open_ = true;
}

void
WorkRecorder::endStage()
{
    if (!stage_open_)
        return;
    open_stage_.host_seconds = nowSeconds() - open_stage_start_;
    profile_.stages.push_back(std::move(open_stage_));
    stage_open_ = false;
}

void
WorkRecorder::addKernel(KernelWork work)
{
    if (!stage_open_) {
        StageProfile stage;
        stage.name = work.name;
        stage.kernels.push_back(std::move(work));
        profile_.stages.push_back(std::move(stage));
        return;
    }
    open_stage_.kernels.push_back(std::move(work));
}

PipelineProfile
WorkRecorder::takeProfile()
{
    if (stage_open_)
        endStage();
    PipelineProfile out = std::move(profile_);
    profile_ = PipelineProfile{};
    return out;
}

void
WorkRecorder::clear()
{
    profile_ = PipelineProfile{};
    stage_open_ = false;
}

}  // namespace edgepcc
