#include "edgepcc/common/log.h"

#include <atomic>
#include <cstdio>

#include "edgepcc/common/sync.h"

namespace edgepcc {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
/** Serializes whole lines onto stderr (no field to GUARDED_BY —
 *  the protected resource is the stream itself). */
Mutex g_log_mutex;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    MutexLock lock(g_log_mutex);
    (void)std::fprintf(stderr, "[edgepcc %s] %s\n", levelTag(level),
                       message.c_str());
}

}  // namespace edgepcc
