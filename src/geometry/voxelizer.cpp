#include "edgepcc/geometry/voxelizer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace edgepcc {

namespace {

/** Packs three 16-bit voxel coordinates into one hashable key. */
std::uint64_t
packKey(std::uint16_t x, std::uint16_t y, std::uint16_t z)
{
    return (static_cast<std::uint64_t>(x) << 32) |
           (static_cast<std::uint64_t>(y) << 16) |
           static_cast<std::uint64_t>(z);
}

struct ColorAccum {
    std::uint32_t r = 0;
    std::uint32_t g = 0;
    std::uint32_t b = 0;
    std::uint32_t count = 0;
    std::size_t slot = 0;  ///< output index in the voxel cloud
};

}  // namespace

Expected<VoxelizeResult>
voxelize(const PointCloud &cloud, int grid_bits)
{
    if (cloud.empty())
        return invalidArgument("voxelize: empty cloud");
    if (grid_bits < 1 || grid_bits > 16)
        return invalidArgument("voxelize: grid_bits must be in [1,16]");

    const AABB box = cloud.boundingBox();
    const Vec3f extent = box.extent();
    const float max_extent =
        std::max({extent.x, extent.y, extent.z, 1e-20f});
    const std::uint32_t grid = 1u << grid_bits;
    const float scale = max_extent / static_cast<float>(grid - 1);

    VoxelizeResult result;
    result.cloud = VoxelCloud(grid_bits);
    result.transform.origin = box.min;
    result.transform.scale = scale;

    std::unordered_map<std::uint64_t, ColorAccum> voxels;
    voxels.reserve(cloud.size());

    const auto &positions = cloud.positions();
    const auto &colors = cloud.colors();
    auto &out = result.cloud;
    out.reserve(cloud.size());

    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3f rel = (positions[i] - box.min) / scale;
        const auto qx = static_cast<std::uint16_t>(std::min<long>(
            grid - 1, std::lround(std::max(0.0f, rel.x))));
        const auto qy = static_cast<std::uint16_t>(std::min<long>(
            grid - 1, std::lround(std::max(0.0f, rel.y))));
        const auto qz = static_cast<std::uint16_t>(std::min<long>(
            grid - 1, std::lround(std::max(0.0f, rel.z))));

        auto [it, inserted] =
            voxels.try_emplace(packKey(qx, qy, qz));
        ColorAccum &accum = it->second;
        if (inserted) {
            accum.slot = out.size();
            out.add(qx, qy, qz, 0, 0, 0);
        } else {
            ++result.merged_points;
        }
        accum.r += colors[i].r;
        accum.g += colors[i].g;
        accum.b += colors[i].b;
        ++accum.count;
    }

    for (const auto &[key, accum] : voxels) {
        (void)key;
        out.setColor(accum.slot,
                     Color{static_cast<std::uint8_t>(
                               accum.r / accum.count),
                           static_cast<std::uint8_t>(
                               accum.g / accum.count),
                           static_cast<std::uint8_t>(
                               accum.b / accum.count)});
    }

    return result;
}

}  // namespace edgepcc
