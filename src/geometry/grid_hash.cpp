#include "edgepcc/geometry/grid_hash.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace edgepcc {

namespace {
constexpr std::uint32_t kNoIndex =
    std::numeric_limits<std::uint32_t>::max();
}

GridHash::GridHash(const VoxelCloud &cloud) : cloud_(&cloud)
{
    map_.reserve(cloud.size());
    next_.assign(cloud.size(), kNoIndex);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const std::uint64_t k =
            key(cloud.x()[i], cloud.y()[i], cloud.z()[i]);
        auto [it, inserted] =
            map_.try_emplace(k, static_cast<std::uint32_t>(i));
        if (!inserted) {
            next_[i] = it->second;
            it->second = static_cast<std::uint32_t>(i);
        }
    }
}

std::optional<std::size_t>
GridHash::findExact(std::uint16_t x, std::uint16_t y,
                    std::uint16_t z) const
{
    const auto it = map_.find(key(x, y, z));
    if (it == map_.end())
        return std::nullopt;
    return static_cast<std::size_t>(it->second);
}

std::optional<std::size_t>
GridHash::findNearest(std::uint16_t x, std::uint16_t y,
                      std::uint16_t z, int max_radius) const
{
    // Shell 0: exact hit.
    if (auto exact = findExact(x, y, z))
        return exact;

    const std::int64_t cx = x, cy = y, cz = z;
    const std::int64_t grid = cloud_->gridSize();

    std::optional<std::size_t> best;
    std::int64_t best_d2 = std::numeric_limits<std::int64_t>::max();

    for (int radius = 1; radius <= max_radius; ++radius) {
        // Once a hit exists, one extra shell suffices: any point in a
        // farther shell is at L2 distance >= radius > best hit's
        // shell distance bound... not exactly, so we finish the shell
        // after the first hit and one more to be safe.
        for (std::int64_t dx = -radius; dx <= radius; ++dx) {
            for (std::int64_t dy = -radius; dy <= radius; ++dy) {
                for (std::int64_t dz = -radius; dz <= radius;
                     ++dz) {
                    // Only the shell surface (interior already done).
                    if (std::max({std::abs(dx), std::abs(dy),
                                  std::abs(dz)}) != radius) {
                        continue;
                    }
                    const std::int64_t nx = cx + dx;
                    const std::int64_t ny = cy + dy;
                    const std::int64_t nz = cz + dz;
                    if (nx < 0 || ny < 0 || nz < 0 || nx >= grid ||
                        ny >= grid || nz >= grid) {
                        continue;
                    }
                    const auto it = map_.find(
                        key(static_cast<std::uint32_t>(nx),
                            static_cast<std::uint32_t>(ny),
                            static_cast<std::uint32_t>(nz)));
                    if (it == map_.end())
                        continue;
                    const std::int64_t d2 =
                        dx * dx + dy * dy + dz * dz;
                    if (d2 < best_d2) {
                        best_d2 = d2;
                        best = static_cast<std::size_t>(it->second);
                    }
                }
            }
        }
        // A hit in shell r has L2 <= sqrt(3)*r; a point in shell r+1
        // can be as close as r+1. Stop once r+1 can't beat the best.
        if (best &&
            static_cast<std::int64_t>(radius + 1) *
                    (radius + 1) >= best_d2) {
            break;
        }
    }
    return best;
}

}  // namespace edgepcc
