#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

AABB
PointCloud::boundingBox() const
{
    AABB box;
    for (const auto &p : positions_)
        box.expand(p);
    return box;
}

bool
VoxelCloud::checkInvariants() const
{
    const std::size_t n = x_.size();
    if (y_.size() != n || z_.size() != n || r_.size() != n ||
        g_.size() != n || b_.size() != n) {
        return false;
    }
    const std::uint32_t limit = gridSize();
    for (std::size_t i = 0; i < n; ++i) {
        if (x_[i] >= limit || y_[i] >= limit || z_[i] >= limit)
            return false;
    }
    return true;
}

}  // namespace edgepcc
