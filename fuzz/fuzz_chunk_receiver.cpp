/**
 * @file
 * Fuzz target: transport framing scanner + resilient receiver.
 * Unlike the pure decoders this layer never rejects: arbitrary wire
 * bytes must scan without a crash and decodeAll() must return one
 * validated, in-bounds outcome per expected frame.
 */

#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/rs_fec.h"
#include "edgepcc/stream/stream_session.h"

#include "fuzz_common.h"

namespace edgepcc::fuzzing {

namespace {
constexpr std::uint32_t kExpectedFrames = 4;
}  // namespace

std::vector<std::uint8_t>
seedPayload()
{
    VideoEncoder encoder(makeIntraInterV1Config());
    std::vector<std::uint8_t> wire;
    std::uint32_t gop_id = 0;
    for (std::uint32_t f = 0; f < kExpectedFrames; ++f) {
        Rng rng(61 + f);
        const int bits = 6;
        const std::uint32_t grid = 1u << bits;
        std::set<std::uint64_t> codes;
        while (codes.size() < 300) {
            const auto x = static_cast<std::uint32_t>(
                (rng.bounded(grid / 2) + f * 3) % grid);
            const auto y =
                static_cast<std::uint32_t>(rng.bounded(grid / 2));
            const std::uint32_t z = (x * 2 + y) % grid;
            codes.insert(mortonEncode(x, y, z));
        }
        VoxelCloud cloud(bits);
        for (const std::uint64_t code : codes) {
            const MortonXyz xyz = mortonDecode(code);
            cloud.add(static_cast<std::uint16_t>(xyz.x),
                      static_cast<std::uint16_t>(xyz.y),
                      static_cast<std::uint16_t>(xyz.z),
                      static_cast<std::uint8_t>(xyz.x * 3),
                      static_cast<std::uint8_t>(xyz.y * 5),
                      static_cast<std::uint8_t>(xyz.z * 7));
        }
        auto encoded = encoder.encode(cloud);
        require(encoded.hasValue(), "seed payload must encode");
        if (encoded->stats.type == Frame::Type::kIntra)
            gop_id = f;
        ChunkHeader header;
        header.sequence = f;
        header.frame_id = f;
        header.gop_id = gop_id;
        header.frame_type = encoded->stats.type;
        if (f + 1 < kExpectedFrames) {
            const std::vector<std::uint8_t> chunk =
                serializeChunk(header, encoded->bitstream);
            wire.insert(wire.end(), chunk.begin(), chunk.end());
            continue;
        }
        // Last frame rides as v2 RS-FEC slices plus Cauchy parity
        // rows so the seed corpus reaches the Reed-Solomon group
        // reassembler, not just the v1 scanner.
        std::vector<ParsedChunk> slices =
            sliceFramePayload(header, encoded->bitstream, 256);
        const auto k =
            static_cast<std::uint8_t>(slices.size() < 255
                                          ? slices.size()
                                          : 255);
        std::vector<ChunkView> views;
        for (std::size_t i = 0; i < slices.size(); ++i) {
            ChunkHeader &sh = slices[i].header;
            sh.flags |= kChunkFlagFec | kChunkFlagRsFec;
            sh.fec_group = 1;
            sh.fec_seq = static_cast<std::uint8_t>(i);
            sh.fec_group_size = k;
            views.push_back(
                ChunkView{sh, ByteSpan(slices[i].payload)});
            const auto chunk =
                serializeChunk(sh, slices[i].payload);
            wire.insert(wire.end(), chunk.begin(), chunk.end());
        }
        std::vector<std::uint8_t> parity;
        for (int row = 0; row < 2; ++row) {
            buildRsParityInto(views, row, parity);
            ChunkHeader ph = slices.front().header;
            ph.flags = static_cast<std::uint8_t>(
                kChunkFlagParity | kChunkFlagFec |
                kChunkFlagRsFec);
            ph.fec_seq = rsParitySeq(row);
            const auto chunk = serializeChunk(ph, parity);
            wire.insert(wire.end(), chunk.begin(), chunk.end());
        }
    }
    return wire;
}

}  // namespace edgepcc::fuzzing

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace edgepcc;
    if (size > fuzzing::kMaxInputBytes)
        return 0;
    const std::vector<std::uint8_t> wire(data, data + size);
    StreamReceiver receiver;
    receiver.ingest(wire);
    const std::vector<SessionFrame> frames =
        receiver.decodeAll(fuzzing::kExpectedFrames);
    fuzzing::require(frames.size() == fuzzing::kExpectedFrames,
                     "receiver must report every expected frame");
    for (const SessionFrame &frame : frames) {
        const std::uint32_t grid = frame.cloud.gridSize();
        for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
            fuzzing::require(frame.cloud.x()[i] < grid,
                             "receiver x out of grid");
            fuzzing::require(frame.cloud.y()[i] < grid,
                             "receiver y out of grid");
            fuzzing::require(frame.cloud.z()[i] < grid,
                             "receiver z out of grid");
        }
    }
    return 0;
}
