/**
 * @file
 * Shared scaffolding for the libFuzzer targets.
 *
 * Each target wraps one decoder entry point as the same DecodeFn
 * shape the corruption harness uses (tests/corruption_harness.h):
 * decode arbitrary bytes, validate any accepted output, and treat a
 * contract violation (out-of-bounds coordinates, impossible sizes)
 * as a crash via trap(). A clean Status failure is a normal,
 * uninteresting outcome.
 *
 * Built two ways (fuzz/CMakeLists.txt):
 *  - Clang: -fsanitize=fuzzer; libFuzzer drives
 *    LLVMFuzzerTestOneInput.
 *  - Other compilers (no libFuzzer runtime): a standalone driver
 *    replays corpus files given as arguments, or — with no
 *    arguments — runs the corruption-harness sweeps over the
 *    target's pristine seed payload as a deterministic smoke.
 */

#ifndef EDGEPCC_FUZZ_FUZZ_COMMON_H
#define EDGEPCC_FUZZ_FUZZ_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "corruption_harness.h"

namespace edgepcc::fuzzing {

/** Inputs larger than this are ignored (decoders reject oversized
 *  claims anyway; this just keeps per-input memory bounded). */
inline constexpr std::size_t kMaxInputBytes = std::size_t{1} << 20;

/** Hard-stops the process on an output-validation failure so the
 *  fuzzer records the input. Sanitizer reports fire the same way. */
[[noreturn]] inline void
trap(const char *what)
{
    std::fprintf(stderr, "fuzz contract violation: %s\n", what);
    std::abort();
}

inline void
require(bool ok, const char *what)
{
    if (!ok)
        trap(what);
}

/** Pristine payload for the target's decoder — the seed corpus and
 *  the input to the no-argument smoke sweep. Defined per target. */
std::vector<std::uint8_t> seedPayload();

}  // namespace edgepcc::fuzzing

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

#ifdef EDGEPCC_FUZZ_STANDALONE

#include <fstream>
#include <iterator>

int
main(int argc, char **argv)
{
    using namespace edgepcc;
    const auto run = [](const std::vector<std::uint8_t> &bytes) {
        (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    };

    if (argc > 1) {
        for (int i = 1; i < argc; ++i) {
            std::ifstream in(argv[i], std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "fuzz: cannot read %s\n",
                             argv[i]);
                return 1;
            }
            const std::vector<std::uint8_t> bytes(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            run(bytes);
        }
        std::printf("fuzz: replayed %d input(s), no crash\n",
                    argc - 1);
        return 0;
    }

    // No corpus given: deterministic smoke. The corruption-harness
    // sweeps (every truncation point, seeded bit flips, garbage
    // runs) mutate the pristine payload; the target must survive
    // every one.
    const std::vector<std::uint8_t> seed = fuzzing::seedPayload();
    const testing::DecodeFn decode =
        [&run](const std::vector<std::uint8_t> &bytes) {
            run(bytes);
            return Status::ok();
        };
    const testing::SweepStats stats =
        testing::fullSweep(seed, decode, 0xED6EFCC1u, 128);
    std::printf("fuzz smoke: %zu mutated inputs, no crash\n",
                stats.attempts);
    return 0;
}

#endif  // EDGEPCC_FUZZ_STANDALONE

#endif  // EDGEPCC_FUZZ_FUZZ_COMMON_H
