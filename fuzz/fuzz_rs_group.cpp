/**
 * @file
 * Fuzz target: Reed-Solomon FEC group reassembler.
 *
 * The input bytes are scanned as chunk wire; every chunk that
 * parses is sorted into a synthetic FEC group (data rows keyed by
 * fec_seq, parity payloads keyed by their rsParitySeq row) and fed
 * to recoverRsChunks() under an attacker-chosen k. The decoder must
 * either decline (nullopt) or return fully validated chunks —
 * in-range sequence numbers and payload sizes that match the
 * embedded record — and must never read or write out of bounds no
 * matter how inconsistent the group composition is. The raw bytes
 * also go through the resilient receiver so the session-level RS
 * path (group tracking, parity buffering, NACK fallback) sees the
 * same adversarial wire.
 */

#include <map>

#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/rs_fec.h"
#include "edgepcc/stream/stream_session.h"

#include "fuzz_common.h"

namespace edgepcc::fuzzing {

namespace {
constexpr int kSeedGroupSize = 4;
constexpr int kSeedParityRows = 2;
}  // namespace

/** A pristine RS group: k data chunks plus m Cauchy parity rows,
 *  exactly as the sender emits them. */
std::vector<std::uint8_t>
seedPayload()
{
    std::vector<ParsedChunk> group;
    for (int i = 0; i < kSeedGroupSize; ++i) {
        ParsedChunk chunk;
        chunk.header.sequence = static_cast<std::uint32_t>(i);
        chunk.header.frame_id = 9;
        chunk.header.gop_id = 8;
        chunk.header.frame_type = Frame::Type::kPredicted;
        chunk.header.flags = kChunkFlagFec | kChunkFlagRsFec;
        chunk.header.slice_index = static_cast<std::uint16_t>(i);
        chunk.header.slice_count = kSeedGroupSize;
        chunk.header.fec_group = 3;
        chunk.header.fec_seq = static_cast<std::uint8_t>(i);
        chunk.header.fec_group_size = kSeedGroupSize;
        chunk.payload.assign(
            static_cast<std::size_t>(40 + i * 13),
            static_cast<std::uint8_t>(0x21 * (i + 1)));
        group.push_back(chunk);
    }

    std::vector<ChunkView> views;
    views.reserve(group.size());
    for (const ParsedChunk &chunk : group)
        views.push_back(
            ChunkView{chunk.header, ByteSpan(chunk.payload)});

    std::vector<std::uint8_t> wire;
    for (const ParsedChunk &chunk : group) {
        const auto bytes = serializeChunk(chunk.header,
                                          chunk.payload);
        wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    std::vector<std::uint8_t> parity;
    for (int row = 0; row < kSeedParityRows; ++row) {
        buildRsParityInto(views, row, parity);
        ChunkHeader header = group.front().header;
        header.flags = static_cast<std::uint8_t>(
            kChunkFlagParity | kChunkFlagFec | kChunkFlagRsFec);
        header.fec_seq = rsParitySeq(row);
        const auto bytes = serializeChunk(header, parity);
        wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    return wire;
}

}  // namespace edgepcc::fuzzing

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace edgepcc;
    if (size > fuzzing::kMaxInputBytes)
        return 0;
    const std::vector<std::uint8_t> wire(data, data + size);

    // Phase 1: direct group reassembly. Whatever chunks survive the
    // wire scan become one group; k comes from the first chunk's
    // claimed group size so mismatched metadata is exercised too.
    const std::vector<ParsedChunk> chunks = scanWire(wire);
    if (!chunks.empty()) {
        std::map<std::uint8_t, ParsedChunk> group_data;
        std::map<int, std::vector<std::uint8_t>> parity_rows;
        for (const ParsedChunk &chunk : chunks) {
            const int row = rsParityRow(chunk.header.fec_seq);
            if ((chunk.header.flags & kChunkFlagParity) != 0 &&
                row >= 0 && row < kRsMaxGroupPlusParity)
                parity_rows[row] = chunk.payload;
            else
                group_data[chunk.header.fec_seq] = chunk;
        }
        const int k = chunks.front().header.fec_group_size != 0
                          ? chunks.front().header.fec_group_size
                          : fuzzing::kSeedGroupSize;
        const auto recovered =
            recoverRsChunks(k, group_data, parity_rows);
        if (recovered.has_value()) {
            for (const ParsedChunk &chunk : *recovered) {
                fuzzing::require(chunk.header.fec_seq <
                                     static_cast<unsigned>(k),
                                 "recovered fec_seq out of group");
                fuzzing::require(
                    group_data.find(chunk.header.fec_seq) ==
                        group_data.end(),
                    "recovered a chunk that was never missing");
                fuzzing::require(chunk.payload.size() <=
                                     fuzzing::kMaxInputBytes,
                                 "recovered payload impossibly big");
            }
        }
    }

    // Phase 2: the resilient receiver over the same bytes — the
    // session-side RS group tracker must stay crash-free and report
    // one validated outcome per expected frame.
    StreamReceiver receiver;
    receiver.ingest(wire);
    const std::vector<SessionFrame> frames = receiver.decodeAll(2);
    fuzzing::require(frames.size() == 2,
                     "receiver must report every expected frame");
    for (const SessionFrame &frame : frames) {
        const std::uint32_t grid = frame.cloud.gridSize();
        for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
            fuzzing::require(frame.cloud.x()[i] < grid,
                             "receiver x out of grid");
            fuzzing::require(frame.cloud.y()[i] < grid,
                             "receiver y out of grid");
            fuzzing::require(frame.cloud.z()[i] < grid,
                             "receiver z out of grid");
        }
    }
    return 0;
}
