/**
 * @file
 * Fuzz target: segment Base+Delta attribute decoder. A corrupt
 * payload must either fail with a clean Status or decode to
 * channels of sane size.
 */

#include "edgepcc/attr/segment_codec.h"
#include "edgepcc/common/rng.h"

#include "fuzz_common.h"

namespace edgepcc::fuzzing {

std::vector<std::uint8_t>
seedPayload()
{
    Rng rng(5);
    AttrChannels channels;
    for (auto &channel : channels) {
        channel.resize(1500);
        for (auto &value : channel)
            value = static_cast<std::int32_t>(rng.bounded(256));
    }
    SegmentCodecConfig config;
    auto encoded = encodeSegmentAttr(channels, config);
    require(encoded.hasValue(), "seed payload must encode");
    return *encoded;
}

}  // namespace edgepcc::fuzzing

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace edgepcc;
    if (size > fuzzing::kMaxInputBytes)
        return 0;
    const std::vector<std::uint8_t> bytes(data, data + size);
    auto decoded = decodeSegmentAttr(bytes);
    if (!decoded.hasValue())
        return 0;  // clean rejection
    // Same contract as the gtest corruption sweep: accepted output
    // must have sane per-channel sizes (a decoder that honors a
    // corrupt length field would allocate unboundedly).
    for (const auto &channel : *decoded)
        fuzzing::require(channel.size() <= (std::size_t{1} << 24),
                         "segment channel impossibly large");
    return 0;
}
