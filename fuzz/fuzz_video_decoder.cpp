/**
 * @file
 * Fuzz target: full frame decoder (container header, geometry and
 * attribute payloads, I/P state machine). A corrupt bitstream must
 * either fail with a clean Status or decode to an in-bounds cloud.
 */

#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/morton/morton.h"

#include "fuzz_common.h"

namespace edgepcc::fuzzing {

std::vector<std::uint8_t>
seedPayload()
{
    Rng rng(31);
    const int bits = 6;
    const std::uint32_t grid = 1u << bits;
    std::set<std::uint64_t> codes;
    while (codes.size() < 400) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        const std::uint32_t z = (x * 2 + y) % grid;
        codes.insert(mortonEncode(x, y, z));
    }
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z),
                  static_cast<std::uint8_t>(xyz.x * 3),
                  static_cast<std::uint8_t>(xyz.y * 5),
                  static_cast<std::uint8_t>(xyz.z * 7));
    }
    VideoEncoder encoder(makeIntraInterV1Config());
    auto encoded = encoder.encode(cloud);
    require(encoded.hasValue(), "seed payload must encode");
    return encoded->bitstream;
}

}  // namespace edgepcc::fuzzing

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace edgepcc;
    if (size > fuzzing::kMaxInputBytes)
        return 0;
    const std::vector<std::uint8_t> bytes(data, data + size);
    // Fresh decoder per input: no reference state, so a P frame is
    // cleanly rejected instead of decoding against stale data.
    VideoDecoder decoder;
    auto decoded = decoder.decode(bytes);
    if (!decoded.hasValue())
        return 0;  // clean rejection
    const VoxelCloud &cloud = decoded->cloud;
    const std::uint32_t grid = cloud.gridSize();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        fuzzing::require(cloud.x()[i] < grid,
                         "decoded x out of grid");
        fuzzing::require(cloud.y()[i] < grid,
                         "decoded y out of grid");
        fuzzing::require(cloud.z()[i] < grid,
                         "decoded z out of grid");
    }
    return 0;
}
