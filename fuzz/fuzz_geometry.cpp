/**
 * @file
 * Fuzz target: octree geometry decoder. A corrupt payload must
 * either fail with a clean Status or decode to a cloud whose every
 * coordinate is inside the declared grid.
 */

#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/octree/geometry_codec.h"

#include "fuzz_common.h"

namespace edgepcc::fuzzing {

std::vector<std::uint8_t>
seedPayload()
{
    // Small Morton-sorted surface cloud, entropy-coded so the
    // fuzzer reaches the range-decoder paths too.
    Rng rng(21);
    const int bits = 6;
    const std::uint32_t grid = 1u << bits;
    std::set<std::uint64_t> codes;
    while (codes.size() < 400) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        const std::uint32_t z = (x * 2 + y) % grid;
        codes.insert(mortonEncode(x, y, z));
    }
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z),
                  static_cast<std::uint8_t>(xyz.x * 3),
                  static_cast<std::uint8_t>(xyz.y * 5),
                  static_cast<std::uint8_t>(xyz.z * 7));
    }
    GeometryConfig config;
    config.builder = GeometryConfig::Builder::kParallelMorton;
    config.entropy_coding = true;
    auto encoded = encodeGeometry(cloud, config);
    require(encoded.hasValue(), "seed payload must encode");
    return encoded->payload;
}

}  // namespace edgepcc::fuzzing

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace edgepcc;
    if (size > fuzzing::kMaxInputBytes)
        return 0;
    const std::vector<std::uint8_t> bytes(data, data + size);
    auto decoded = decodeGeometry(bytes);
    if (!decoded.hasValue())
        return 0;  // clean rejection
    const VoxelCloud &cloud = *decoded;
    const std::uint32_t grid = cloud.gridSize();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        fuzzing::require(cloud.x()[i] < grid,
                         "geometry x out of grid");
        fuzzing::require(cloud.y()[i] < grid,
                         "geometry y out of grid");
        fuzzing::require(cloud.z()[i] < grid,
                         "geometry z out of grid");
    }
    return 0;
}
